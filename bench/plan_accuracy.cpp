// aeplan prediction accuracy: the static cost envelope against the
// cycle-accurate simulator over a deterministic corpus spanning all three
// addressing modes and every frame geometry the test suite fuzzes.
//
// Two properties are gated, and the run exits 1 if either fails:
//
//   * soundness — every measured cost lands inside the static
//     [lower, upper] envelope (the property farm admission relies on);
//   * sharpness — the median relative error of the point estimate
//     (cycles_estimate vs measured cycles) stays at or under 15% per
//     addressing mode, so the envelope is useful, not merely true.
//
// Results land in BENCH_plan.json next to the working directory, one entry
// per addressing mode plus the gate verdict, so CI can archive the numbers
// and a regression in either direction fails the push.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/planner.hpp"
#include "core/core.hpp"
#include "image/synth.hpp"

using namespace ae;

namespace {

struct Case {
  alib::Call call;
  Size size;
  u64 seed_a = 1;
  u64 seed_b = 2;
  bool needs_b = false;
};

/// The same frame geometries tests/test_util.hpp fuzzes: strip-aligned,
/// ragged, tall-narrow and single-strip shapes.
const Size kSizes[] = {{48, 32}, {33, 17}, {64, 48},
                       {16, 16}, {21, 40}, {96, 16}};

std::vector<Case> make_corpus() {
  std::vector<Case> corpus;
  u64 seed = 0xAEB1;
  for (const Size size : kSizes) {
    const auto add = [&](alib::Call call, bool needs_b = false) {
      Case c;
      c.call = std::move(call);
      c.size = size;
      c.seed_a = ++seed;
      c.seed_b = ++seed;
      c.needs_b = needs_b;
      corpus.push_back(std::move(c));
    };
    alib::OpParams threshold;
    threshold.threshold = 10;
    add(alib::Call::make_intra(alib::PixelOp::GradientMag,
                               alib::Neighborhood::con8()));
    add(alib::Call::make_intra(alib::PixelOp::Median,
                               alib::Neighborhood::con8()));
    add(alib::Call::make_intra(alib::PixelOp::Copy,
                               alib::Neighborhood::con4()));
    add(alib::Call::make_intra(alib::PixelOp::Threshold,
                               alib::Neighborhood::con0(), ChannelMask::y(),
                               ChannelMask::y(), threshold));
    add(alib::Call::make_inter(alib::PixelOp::AbsDiff), /*needs_b=*/true);
    add(alib::Call::make_inter(alib::PixelOp::Add), /*needs_b=*/true);
    // Seeds at the quarter and center points; both connectivities.
    alib::SegmentSpec spec;
    spec.seeds = {Point{size.width / 4, size.height / 4},
                  Point{size.width / 2, size.height / 2}};
    spec.luma_threshold = 18;
    const ChannelMask seg_out = ChannelMask::y().with(Channel::Alfa);
    add(alib::Call::make_segment(alib::PixelOp::Copy,
                                 alib::Neighborhood::con4(), spec,
                                 ChannelMask::y(), seg_out));
    add(alib::Call::make_segment(alib::PixelOp::Copy,
                                 alib::Neighborhood::con8(), spec,
                                 ChannelMask::y(), seg_out));
  }
  return corpus;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

struct ModeAccuracy {
  int cases = 0;
  std::vector<double> rel_errors;
};

}  // namespace

int main() {
  constexpr double kMedianGate = 0.15;
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);
  std::map<std::string, ModeAccuracy> modes;
  int violations = 0;
  int cases = 0;

  for (const Case& c : make_corpus()) {
    const analysis::CostEnvelope env = analysis::plan_call(c.call, c.size);
    const img::Image a = img::make_test_frame(c.size, c.seed_a);
    const img::Image b = img::make_test_frame(c.size, c.seed_b);
    cycle.execute(c.call, a, c.needs_b ? &b : nullptr);
    const core::EngineRunStats& run = cycle.last_run();
    ++cases;

    const auto violated = [&](const std::string& what) {
      ++violations;
      std::cerr << "VIOLATION: " << c.call.describe() << " on "
                << to_string(c.size) << ": " << what << "\n";
    };
    if (!env.cycles.contains(run.cycles))
      violated("cycles " + std::to_string(run.cycles) + " outside [" +
               std::to_string(env.cycles.lower) + ", " +
               std::to_string(env.cycles.upper) + "]");
    if (run.words_in != env.dma_words_in || run.words_out != env.dma_words_out)
      violated("DMA word count mismatch");
    if (!env.zbt_reads.contains(run.zbt_read_transactions) ||
        !env.zbt_writes.contains(run.zbt_write_transactions))
      violated("ZBT transactions outside the bound");

    ModeAccuracy& acc = modes[to_string(c.call.mode)];
    ++acc.cases;
    const double measured = static_cast<double>(run.cycles);
    const double estimate = static_cast<double>(env.cycles_estimate);
    acc.rel_errors.push_back(measured > 0.0
                                 ? std::abs(estimate - measured) / measured
                                 : 0.0);
  }

  bool sharp = true;
  std::cout << "aeplan prediction accuracy (" << cases << " cases)\n";
  std::cout << "mode      cases  median-err  max-err\n";
  std::string modes_json;
  for (const auto& [mode, acc] : modes) {
    const double med = median(acc.rel_errors);
    const double worst =
        *std::max_element(acc.rel_errors.begin(), acc.rel_errors.end());
    sharp = sharp && med <= kMedianGate;
    std::printf("%-9s %5d  %9.1f%%  %6.1f%%\n", mode.c_str(), acc.cases,
                100.0 * med, 100.0 * worst);
    if (!modes_json.empty()) modes_json += ",";
    modes_json += "\"" + mode + "\":{\"cases\":" + std::to_string(acc.cases) +
                  ",\"median_rel_error\":" + std::to_string(med) +
                  ",\"max_rel_error\":" + std::to_string(worst) + "}";
  }
  const bool pass = violations == 0 && sharp;
  std::cout << "envelope violations: " << violations << "\n"
            << "gate (median <= 15% per mode, zero violations): "
            << (pass ? "PASS" : "FAIL") << "\n";

  if (std::FILE* f = std::fopen("BENCH_plan.json", "w")) {
    std::fprintf(f,
                 "{\"cases\":%d,\"envelope_violations\":%d,\"modes\":{%s},"
                 "\"gate\":{\"max_median_rel_error\":%.2f,\"pass\":%s}}\n",
                 cases, violations, modes_json.c_str(), kMedianGate,
                 pass ? "true" : "false");
    std::fclose(f);
  }
  return pass ? 0 : 1;
}
