# Empty compiler generated dependencies file for aetool.
# This may be replaced when dependencies are built.
