file(REMOVE_RECURSE
  "CMakeFiles/aetool.dir/aetool.cpp.o"
  "CMakeFiles/aetool.dir/aetool.cpp.o.d"
  "aetool"
  "aetool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aetool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
