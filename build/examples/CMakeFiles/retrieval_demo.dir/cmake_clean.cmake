file(REMOVE_RECURSE
  "CMakeFiles/retrieval_demo.dir/retrieval_demo.cpp.o"
  "CMakeFiles/retrieval_demo.dir/retrieval_demo.cpp.o.d"
  "retrieval_demo"
  "retrieval_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrieval_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
