file(REMOVE_RECURSE
  "CMakeFiles/coprocessor_explorer.dir/coprocessor_explorer.cpp.o"
  "CMakeFiles/coprocessor_explorer.dir/coprocessor_explorer.cpp.o.d"
  "coprocessor_explorer"
  "coprocessor_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coprocessor_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
