# Empty compiler generated dependencies file for coprocessor_explorer.
# This may be replaced when dependencies are built.
