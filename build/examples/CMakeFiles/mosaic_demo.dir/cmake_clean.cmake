file(REMOVE_RECURSE
  "CMakeFiles/mosaic_demo.dir/mosaic_demo.cpp.o"
  "CMakeFiles/mosaic_demo.dir/mosaic_demo.cpp.o.d"
  "mosaic_demo"
  "mosaic_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
