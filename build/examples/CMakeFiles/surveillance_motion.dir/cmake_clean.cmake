file(REMOVE_RECURSE
  "CMakeFiles/surveillance_motion.dir/surveillance_motion.cpp.o"
  "CMakeFiles/surveillance_motion.dir/surveillance_motion.cpp.o.d"
  "surveillance_motion"
  "surveillance_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surveillance_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
