# Empty compiler generated dependencies file for surveillance_motion.
# This may be replaced when dependencies are built.
