# Empty dependencies file for table3_test.
# This may be replaced when dependencies are built.
