file(REMOVE_RECURSE
  "CMakeFiles/table3_test.dir/table3_test.cpp.o"
  "CMakeFiles/table3_test.dir/table3_test.cpp.o.d"
  "table3_test"
  "table3_test.pdb"
  "table3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
