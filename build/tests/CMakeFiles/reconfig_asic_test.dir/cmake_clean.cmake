file(REMOVE_RECURSE
  "CMakeFiles/reconfig_asic_test.dir/reconfig_asic_test.cpp.o"
  "CMakeFiles/reconfig_asic_test.dir/reconfig_asic_test.cpp.o.d"
  "reconfig_asic_test"
  "reconfig_asic_test.pdb"
  "reconfig_asic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_asic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
