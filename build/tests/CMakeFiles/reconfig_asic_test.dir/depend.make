# Empty dependencies file for reconfig_asic_test.
# This may be replaced when dependencies are built.
