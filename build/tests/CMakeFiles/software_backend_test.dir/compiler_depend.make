# Empty compiler generated dependencies file for software_backend_test.
# This may be replaced when dependencies are built.
