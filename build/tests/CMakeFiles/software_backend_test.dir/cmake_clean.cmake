file(REMOVE_RECURSE
  "CMakeFiles/software_backend_test.dir/software_backend_test.cpp.o"
  "CMakeFiles/software_backend_test.dir/software_backend_test.cpp.o.d"
  "software_backend_test"
  "software_backend_test.pdb"
  "software_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
