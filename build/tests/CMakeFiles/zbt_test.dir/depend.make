# Empty dependencies file for zbt_test.
# This may be replaced when dependencies are built.
