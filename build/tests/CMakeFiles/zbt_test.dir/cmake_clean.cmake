file(REMOVE_RECURSE
  "CMakeFiles/zbt_test.dir/zbt_test.cpp.o"
  "CMakeFiles/zbt_test.dir/zbt_test.cpp.o.d"
  "zbt_test"
  "zbt_test.pdb"
  "zbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
