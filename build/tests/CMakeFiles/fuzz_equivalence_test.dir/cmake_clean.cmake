file(REMOVE_RECURSE
  "CMakeFiles/fuzz_equivalence_test.dir/fuzz_equivalence_test.cpp.o"
  "CMakeFiles/fuzz_equivalence_test.dir/fuzz_equivalence_test.cpp.o.d"
  "fuzz_equivalence_test"
  "fuzz_equivalence_test.pdb"
  "fuzz_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
