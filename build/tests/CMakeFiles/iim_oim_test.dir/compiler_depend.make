# Empty compiler generated dependencies file for iim_oim_test.
# This may be replaced when dependencies are built.
