file(REMOVE_RECURSE
  "CMakeFiles/iim_oim_test.dir/iim_oim_test.cpp.o"
  "CMakeFiles/iim_oim_test.dir/iim_oim_test.cpp.o.d"
  "iim_oim_test"
  "iim_oim_test.pdb"
  "iim_oim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iim_oim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
