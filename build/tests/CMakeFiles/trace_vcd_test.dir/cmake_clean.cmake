file(REMOVE_RECURSE
  "CMakeFiles/trace_vcd_test.dir/trace_vcd_test.cpp.o"
  "CMakeFiles/trace_vcd_test.dir/trace_vcd_test.cpp.o.d"
  "trace_vcd_test"
  "trace_vcd_test.pdb"
  "trace_vcd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_vcd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
