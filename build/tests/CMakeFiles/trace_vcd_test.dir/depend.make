# Empty dependencies file for trace_vcd_test.
# This may be replaced when dependencies are built.
