file(REMOVE_RECURSE
  "CMakeFiles/threshold_segmentation_test.dir/threshold_segmentation_test.cpp.o"
  "CMakeFiles/threshold_segmentation_test.dir/threshold_segmentation_test.cpp.o.d"
  "threshold_segmentation_test"
  "threshold_segmentation_test.pdb"
  "threshold_segmentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_segmentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
