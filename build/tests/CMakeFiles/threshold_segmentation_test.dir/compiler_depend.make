# Empty compiler generated dependencies file for threshold_segmentation_test.
# This may be replaced when dependencies are built.
