# Empty dependencies file for gme_integration_test.
# This may be replaced when dependencies are built.
