file(REMOVE_RECURSE
  "CMakeFiles/gme_integration_test.dir/gme_integration_test.cpp.o"
  "CMakeFiles/gme_integration_test.dir/gme_integration_test.cpp.o.d"
  "gme_integration_test"
  "gme_integration_test.pdb"
  "gme_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gme_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
