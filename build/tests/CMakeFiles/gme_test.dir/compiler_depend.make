# Empty compiler generated dependencies file for gme_test.
# This may be replaced when dependencies are built.
