
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gme_test.cpp" "tests/CMakeFiles/gme_test.dir/gme_test.cpp.o" "gcc" "tests/CMakeFiles/gme_test.dir/gme_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gme/CMakeFiles/ae_gme.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/addresslib/CMakeFiles/ae_addresslib.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ae_image.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
