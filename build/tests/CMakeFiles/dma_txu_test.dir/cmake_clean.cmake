file(REMOVE_RECURSE
  "CMakeFiles/dma_txu_test.dir/dma_txu_test.cpp.o"
  "CMakeFiles/dma_txu_test.dir/dma_txu_test.cpp.o.d"
  "dma_txu_test"
  "dma_txu_test.pdb"
  "dma_txu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_txu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
