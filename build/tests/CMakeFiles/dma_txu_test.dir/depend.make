# Empty dependencies file for dma_txu_test.
# This may be replaced when dependencies are built.
