file(REMOVE_RECURSE
  "CMakeFiles/call_test.dir/call_test.cpp.o"
  "CMakeFiles/call_test.dir/call_test.cpp.o.d"
  "call_test"
  "call_test.pdb"
  "call_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
