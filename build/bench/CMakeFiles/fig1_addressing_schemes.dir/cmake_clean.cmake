file(REMOVE_RECURSE
  "CMakeFiles/fig1_addressing_schemes.dir/fig1_addressing_schemes.cpp.o"
  "CMakeFiles/fig1_addressing_schemes.dir/fig1_addressing_schemes.cpp.o.d"
  "fig1_addressing_schemes"
  "fig1_addressing_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_addressing_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
