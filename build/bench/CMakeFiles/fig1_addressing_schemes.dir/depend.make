# Empty dependencies file for fig1_addressing_schemes.
# This may be replaced when dependencies are built.
