# Empty dependencies file for outlook_extensions.
# This may be replaced when dependencies are built.
