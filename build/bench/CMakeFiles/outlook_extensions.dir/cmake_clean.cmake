file(REMOVE_RECURSE
  "CMakeFiles/outlook_extensions.dir/outlook_extensions.cpp.o"
  "CMakeFiles/outlook_extensions.dir/outlook_extensions.cpp.o.d"
  "outlook_extensions"
  "outlook_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlook_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
