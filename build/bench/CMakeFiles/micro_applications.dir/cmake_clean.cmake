file(REMOVE_RECURSE
  "CMakeFiles/micro_applications.dir/micro_applications.cpp.o"
  "CMakeFiles/micro_applications.dir/micro_applications.cpp.o.d"
  "micro_applications"
  "micro_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
