# Empty dependencies file for micro_applications.
# This may be replaced when dependencies are built.
