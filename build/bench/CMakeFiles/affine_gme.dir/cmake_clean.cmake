file(REMOVE_RECURSE
  "CMakeFiles/affine_gme.dir/affine_gme.cpp.o"
  "CMakeFiles/affine_gme.dir/affine_gme.cpp.o.d"
  "affine_gme"
  "affine_gme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affine_gme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
