# Empty dependencies file for affine_gme.
# This may be replaced when dependencies are built.
