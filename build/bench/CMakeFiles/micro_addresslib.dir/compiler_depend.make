# Empty compiler generated dependencies file for micro_addresslib.
# This may be replaced when dependencies are built.
