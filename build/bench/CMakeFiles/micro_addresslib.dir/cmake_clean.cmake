file(REMOVE_RECURSE
  "CMakeFiles/micro_addresslib.dir/micro_addresslib.cpp.o"
  "CMakeFiles/micro_addresslib.dir/micro_addresslib.cpp.o.d"
  "micro_addresslib"
  "micro_addresslib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_addresslib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
