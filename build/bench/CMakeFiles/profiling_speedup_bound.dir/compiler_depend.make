# Empty compiler generated dependencies file for profiling_speedup_bound.
# This may be replaced when dependencies are built.
