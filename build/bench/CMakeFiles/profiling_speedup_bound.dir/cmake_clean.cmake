file(REMOVE_RECURSE
  "CMakeFiles/profiling_speedup_bound.dir/profiling_speedup_bound.cpp.o"
  "CMakeFiles/profiling_speedup_bound.dir/profiling_speedup_bound.cpp.o.d"
  "profiling_speedup_bound"
  "profiling_speedup_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_speedup_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
