file(REMOVE_RECURSE
  "CMakeFiles/format_scaling.dir/format_scaling.cpp.o"
  "CMakeFiles/format_scaling.dir/format_scaling.cpp.o.d"
  "format_scaling"
  "format_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
