# Empty dependencies file for format_scaling.
# This may be replaced when dependencies are built.
