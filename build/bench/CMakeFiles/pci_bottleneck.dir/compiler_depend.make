# Empty compiler generated dependencies file for pci_bottleneck.
# This may be replaced when dependencies are built.
