file(REMOVE_RECURSE
  "CMakeFiles/pci_bottleneck.dir/pci_bottleneck.cpp.o"
  "CMakeFiles/pci_bottleneck.dir/pci_bottleneck.cpp.o.d"
  "pci_bottleneck"
  "pci_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pci_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
