file(REMOVE_RECURSE
  "CMakeFiles/session_optimization.dir/session_optimization.cpp.o"
  "CMakeFiles/session_optimization.dir/session_optimization.cpp.o.d"
  "session_optimization"
  "session_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
