# Empty compiler generated dependencies file for session_optimization.
# This may be replaced when dependencies are built.
