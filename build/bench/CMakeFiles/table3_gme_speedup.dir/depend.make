# Empty dependencies file for table3_gme_speedup.
# This may be replaced when dependencies are built.
