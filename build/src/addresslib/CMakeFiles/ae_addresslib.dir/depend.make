# Empty dependencies file for ae_addresslib.
# This may be replaced when dependencies are built.
