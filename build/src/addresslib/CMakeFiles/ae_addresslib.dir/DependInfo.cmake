
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/addresslib/access_model.cpp" "src/addresslib/CMakeFiles/ae_addresslib.dir/access_model.cpp.o" "gcc" "src/addresslib/CMakeFiles/ae_addresslib.dir/access_model.cpp.o.d"
  "/root/repo/src/addresslib/addressing.cpp" "src/addresslib/CMakeFiles/ae_addresslib.dir/addressing.cpp.o" "gcc" "src/addresslib/CMakeFiles/ae_addresslib.dir/addressing.cpp.o.d"
  "/root/repo/src/addresslib/call.cpp" "src/addresslib/CMakeFiles/ae_addresslib.dir/call.cpp.o" "gcc" "src/addresslib/CMakeFiles/ae_addresslib.dir/call.cpp.o.d"
  "/root/repo/src/addresslib/cost_model.cpp" "src/addresslib/CMakeFiles/ae_addresslib.dir/cost_model.cpp.o" "gcc" "src/addresslib/CMakeFiles/ae_addresslib.dir/cost_model.cpp.o.d"
  "/root/repo/src/addresslib/functional.cpp" "src/addresslib/CMakeFiles/ae_addresslib.dir/functional.cpp.o" "gcc" "src/addresslib/CMakeFiles/ae_addresslib.dir/functional.cpp.o.d"
  "/root/repo/src/addresslib/ops.cpp" "src/addresslib/CMakeFiles/ae_addresslib.dir/ops.cpp.o" "gcc" "src/addresslib/CMakeFiles/ae_addresslib.dir/ops.cpp.o.d"
  "/root/repo/src/addresslib/segment.cpp" "src/addresslib/CMakeFiles/ae_addresslib.dir/segment.cpp.o" "gcc" "src/addresslib/CMakeFiles/ae_addresslib.dir/segment.cpp.o.d"
  "/root/repo/src/addresslib/software_backend.cpp" "src/addresslib/CMakeFiles/ae_addresslib.dir/software_backend.cpp.o" "gcc" "src/addresslib/CMakeFiles/ae_addresslib.dir/software_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/ae_image.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
