file(REMOVE_RECURSE
  "libae_addresslib.a"
)
