file(REMOVE_RECURSE
  "CMakeFiles/ae_addresslib.dir/access_model.cpp.o"
  "CMakeFiles/ae_addresslib.dir/access_model.cpp.o.d"
  "CMakeFiles/ae_addresslib.dir/addressing.cpp.o"
  "CMakeFiles/ae_addresslib.dir/addressing.cpp.o.d"
  "CMakeFiles/ae_addresslib.dir/call.cpp.o"
  "CMakeFiles/ae_addresslib.dir/call.cpp.o.d"
  "CMakeFiles/ae_addresslib.dir/cost_model.cpp.o"
  "CMakeFiles/ae_addresslib.dir/cost_model.cpp.o.d"
  "CMakeFiles/ae_addresslib.dir/functional.cpp.o"
  "CMakeFiles/ae_addresslib.dir/functional.cpp.o.d"
  "CMakeFiles/ae_addresslib.dir/ops.cpp.o"
  "CMakeFiles/ae_addresslib.dir/ops.cpp.o.d"
  "CMakeFiles/ae_addresslib.dir/segment.cpp.o"
  "CMakeFiles/ae_addresslib.dir/segment.cpp.o.d"
  "CMakeFiles/ae_addresslib.dir/software_backend.cpp.o"
  "CMakeFiles/ae_addresslib.dir/software_backend.cpp.o.d"
  "libae_addresslib.a"
  "libae_addresslib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ae_addresslib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
