file(REMOVE_RECURSE
  "libae_gme.a"
)
