
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gme/affine.cpp" "src/gme/CMakeFiles/ae_gme.dir/affine.cpp.o" "gcc" "src/gme/CMakeFiles/ae_gme.dir/affine.cpp.o.d"
  "/root/repo/src/gme/affine_estimator.cpp" "src/gme/CMakeFiles/ae_gme.dir/affine_estimator.cpp.o" "gcc" "src/gme/CMakeFiles/ae_gme.dir/affine_estimator.cpp.o.d"
  "/root/repo/src/gme/estimator.cpp" "src/gme/CMakeFiles/ae_gme.dir/estimator.cpp.o" "gcc" "src/gme/CMakeFiles/ae_gme.dir/estimator.cpp.o.d"
  "/root/repo/src/gme/mosaic.cpp" "src/gme/CMakeFiles/ae_gme.dir/mosaic.cpp.o" "gcc" "src/gme/CMakeFiles/ae_gme.dir/mosaic.cpp.o.d"
  "/root/repo/src/gme/motion.cpp" "src/gme/CMakeFiles/ae_gme.dir/motion.cpp.o" "gcc" "src/gme/CMakeFiles/ae_gme.dir/motion.cpp.o.d"
  "/root/repo/src/gme/perspective.cpp" "src/gme/CMakeFiles/ae_gme.dir/perspective.cpp.o" "gcc" "src/gme/CMakeFiles/ae_gme.dir/perspective.cpp.o.d"
  "/root/repo/src/gme/perspective_estimator.cpp" "src/gme/CMakeFiles/ae_gme.dir/perspective_estimator.cpp.o" "gcc" "src/gme/CMakeFiles/ae_gme.dir/perspective_estimator.cpp.o.d"
  "/root/repo/src/gme/pyramid.cpp" "src/gme/CMakeFiles/ae_gme.dir/pyramid.cpp.o" "gcc" "src/gme/CMakeFiles/ae_gme.dir/pyramid.cpp.o.d"
  "/root/repo/src/gme/table3.cpp" "src/gme/CMakeFiles/ae_gme.dir/table3.cpp.o" "gcc" "src/gme/CMakeFiles/ae_gme.dir/table3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/addresslib/CMakeFiles/ae_addresslib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ae_image.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
