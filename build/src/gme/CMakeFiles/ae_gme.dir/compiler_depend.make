# Empty compiler generated dependencies file for ae_gme.
# This may be replaced when dependencies are built.
