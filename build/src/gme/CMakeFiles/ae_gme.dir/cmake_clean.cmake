file(REMOVE_RECURSE
  "CMakeFiles/ae_gme.dir/affine.cpp.o"
  "CMakeFiles/ae_gme.dir/affine.cpp.o.d"
  "CMakeFiles/ae_gme.dir/affine_estimator.cpp.o"
  "CMakeFiles/ae_gme.dir/affine_estimator.cpp.o.d"
  "CMakeFiles/ae_gme.dir/estimator.cpp.o"
  "CMakeFiles/ae_gme.dir/estimator.cpp.o.d"
  "CMakeFiles/ae_gme.dir/mosaic.cpp.o"
  "CMakeFiles/ae_gme.dir/mosaic.cpp.o.d"
  "CMakeFiles/ae_gme.dir/motion.cpp.o"
  "CMakeFiles/ae_gme.dir/motion.cpp.o.d"
  "CMakeFiles/ae_gme.dir/perspective.cpp.o"
  "CMakeFiles/ae_gme.dir/perspective.cpp.o.d"
  "CMakeFiles/ae_gme.dir/perspective_estimator.cpp.o"
  "CMakeFiles/ae_gme.dir/perspective_estimator.cpp.o.d"
  "CMakeFiles/ae_gme.dir/pyramid.cpp.o"
  "CMakeFiles/ae_gme.dir/pyramid.cpp.o.d"
  "CMakeFiles/ae_gme.dir/table3.cpp.o"
  "CMakeFiles/ae_gme.dir/table3.cpp.o.d"
  "libae_gme.a"
  "libae_gme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ae_gme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
