file(REMOVE_RECURSE
  "CMakeFiles/ae_ret.dir/database.cpp.o"
  "CMakeFiles/ae_ret.dir/database.cpp.o.d"
  "CMakeFiles/ae_ret.dir/descriptors.cpp.o"
  "CMakeFiles/ae_ret.dir/descriptors.cpp.o.d"
  "libae_ret.a"
  "libae_ret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ae_ret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
