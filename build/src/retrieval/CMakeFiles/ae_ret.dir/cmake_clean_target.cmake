file(REMOVE_RECURSE
  "libae_ret.a"
)
