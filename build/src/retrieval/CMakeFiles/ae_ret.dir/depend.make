# Empty dependencies file for ae_ret.
# This may be replaced when dependencies are built.
