file(REMOVE_RECURSE
  "libae_core.a"
)
