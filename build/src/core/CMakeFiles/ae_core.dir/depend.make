# Empty dependencies file for ae_core.
# This may be replaced when dependencies are built.
