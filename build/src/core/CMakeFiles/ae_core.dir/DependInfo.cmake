
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic.cpp" "src/core/CMakeFiles/ae_core.dir/analytic.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/analytic.cpp.o.d"
  "/root/repo/src/core/asic.cpp" "src/core/CMakeFiles/ae_core.dir/asic.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/asic.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/ae_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/config.cpp.o.d"
  "/root/repo/src/core/dma.cpp" "src/core/CMakeFiles/ae_core.dir/dma.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/dma.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/ae_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/engine_sim.cpp" "src/core/CMakeFiles/ae_core.dir/engine_sim.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/engine_sim.cpp.o.d"
  "/root/repo/src/core/iim.cpp" "src/core/CMakeFiles/ae_core.dir/iim.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/iim.cpp.o.d"
  "/root/repo/src/core/oim.cpp" "src/core/CMakeFiles/ae_core.dir/oim.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/oim.cpp.o.d"
  "/root/repo/src/core/process_unit.cpp" "src/core/CMakeFiles/ae_core.dir/process_unit.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/process_unit.cpp.o.d"
  "/root/repo/src/core/reconfig.cpp" "src/core/CMakeFiles/ae_core.dir/reconfig.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/reconfig.cpp.o.d"
  "/root/repo/src/core/resources.cpp" "src/core/CMakeFiles/ae_core.dir/resources.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/resources.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/ae_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/session.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/ae_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/trace_vcd.cpp" "src/core/CMakeFiles/ae_core.dir/trace_vcd.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/trace_vcd.cpp.o.d"
  "/root/repo/src/core/txu.cpp" "src/core/CMakeFiles/ae_core.dir/txu.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/txu.cpp.o.d"
  "/root/repo/src/core/zbt.cpp" "src/core/CMakeFiles/ae_core.dir/zbt.cpp.o" "gcc" "src/core/CMakeFiles/ae_core.dir/zbt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/addresslib/CMakeFiles/ae_addresslib.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ae_image.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
