file(REMOVE_RECURSE
  "libae_prof.a"
)
