# Empty compiler generated dependencies file for ae_prof.
# This may be replaced when dependencies are built.
