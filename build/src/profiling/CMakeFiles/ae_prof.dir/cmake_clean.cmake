file(REMOVE_RECURSE
  "CMakeFiles/ae_prof.dir/profiler.cpp.o"
  "CMakeFiles/ae_prof.dir/profiler.cpp.o.d"
  "libae_prof.a"
  "libae_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ae_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
