
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/compare.cpp" "src/image/CMakeFiles/ae_image.dir/compare.cpp.o" "gcc" "src/image/CMakeFiles/ae_image.dir/compare.cpp.o.d"
  "/root/repo/src/image/image.cpp" "src/image/CMakeFiles/ae_image.dir/image.cpp.o" "gcc" "src/image/CMakeFiles/ae_image.dir/image.cpp.o.d"
  "/root/repo/src/image/io.cpp" "src/image/CMakeFiles/ae_image.dir/io.cpp.o" "gcc" "src/image/CMakeFiles/ae_image.dir/io.cpp.o.d"
  "/root/repo/src/image/sequence.cpp" "src/image/CMakeFiles/ae_image.dir/sequence.cpp.o" "gcc" "src/image/CMakeFiles/ae_image.dir/sequence.cpp.o.d"
  "/root/repo/src/image/synth.cpp" "src/image/CMakeFiles/ae_image.dir/synth.cpp.o" "gcc" "src/image/CMakeFiles/ae_image.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
