file(REMOVE_RECURSE
  "libae_image.a"
)
