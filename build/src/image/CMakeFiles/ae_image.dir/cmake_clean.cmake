file(REMOVE_RECURSE
  "CMakeFiles/ae_image.dir/compare.cpp.o"
  "CMakeFiles/ae_image.dir/compare.cpp.o.d"
  "CMakeFiles/ae_image.dir/image.cpp.o"
  "CMakeFiles/ae_image.dir/image.cpp.o.d"
  "CMakeFiles/ae_image.dir/io.cpp.o"
  "CMakeFiles/ae_image.dir/io.cpp.o.d"
  "CMakeFiles/ae_image.dir/sequence.cpp.o"
  "CMakeFiles/ae_image.dir/sequence.cpp.o.d"
  "CMakeFiles/ae_image.dir/synth.cpp.o"
  "CMakeFiles/ae_image.dir/synth.cpp.o.d"
  "libae_image.a"
  "libae_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ae_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
