# Empty compiler generated dependencies file for ae_image.
# This may be replaced when dependencies are built.
