# Empty compiler generated dependencies file for ae_common.
# This may be replaced when dependencies are built.
