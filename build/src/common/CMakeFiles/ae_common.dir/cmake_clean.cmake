file(REMOVE_RECURSE
  "CMakeFiles/ae_common.dir/error.cpp.o"
  "CMakeFiles/ae_common.dir/error.cpp.o.d"
  "CMakeFiles/ae_common.dir/format.cpp.o"
  "CMakeFiles/ae_common.dir/format.cpp.o.d"
  "CMakeFiles/ae_common.dir/geometry.cpp.o"
  "CMakeFiles/ae_common.dir/geometry.cpp.o.d"
  "CMakeFiles/ae_common.dir/types.cpp.o"
  "CMakeFiles/ae_common.dir/types.cpp.o.d"
  "libae_common.a"
  "libae_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ae_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
