file(REMOVE_RECURSE
  "libae_common.a"
)
