# CMake generated Testfile for 
# Source directory: /root/repo/src/segmentation
# Build directory: /root/repo/build/src/segmentation
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
