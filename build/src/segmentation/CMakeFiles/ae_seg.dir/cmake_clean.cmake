file(REMOVE_RECURSE
  "CMakeFiles/ae_seg.dir/segmentation.cpp.o"
  "CMakeFiles/ae_seg.dir/segmentation.cpp.o.d"
  "CMakeFiles/ae_seg.dir/threshold_segmentation.cpp.o"
  "CMakeFiles/ae_seg.dir/threshold_segmentation.cpp.o.d"
  "CMakeFiles/ae_seg.dir/tracker.cpp.o"
  "CMakeFiles/ae_seg.dir/tracker.cpp.o.d"
  "libae_seg.a"
  "libae_seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ae_seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
