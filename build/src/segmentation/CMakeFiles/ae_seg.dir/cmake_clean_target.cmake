file(REMOVE_RECURSE
  "libae_seg.a"
)
