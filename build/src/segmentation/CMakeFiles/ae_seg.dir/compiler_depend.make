# Empty compiler generated dependencies file for ae_seg.
# This may be replaced when dependencies are built.
