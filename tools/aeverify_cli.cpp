// aeverify — command-line front end of the static call-program verifier.
//
// Usage:
//   aeverify [options] <program.aep ...|->   verify text-form call programs
//   aeverify --rules                         print the rule catalog
//   aeverify --golden                        verify the built-in known-good
//                                            programs (the CI smoke check)
//   aeverify --demo-bad                      verify a built-in ill-formed
//                                            program (expected exit: 1)
//
// Options:
//   --strict    warnings also fail (exit 1)
//   --quiet     print only the per-file summary line
//   --echo      print the parsed program back before the report
//   --plan      print the static cost/residency plan (aeplan)
//   --lint      run the AEW performance lints alongside verification
//   --opt       run the aeopt rewriter on clean programs and print the
//               rewrite log plus the optimized program
//   --opt-json  like --opt, but the per-file JSON object grows an "opt"
//               member (implies --json)
//   --domain    run the aedom value-interval analysis and print the
//               per-frame interval table plus the per-call proofs
//   --domain-json  like --domain, but the per-file JSON object grows a
//               "domain" member (implies --json)
//   --alloc     run the aealloc static residency allocator and print the
//               per-call placement plan (liveness, bank assignment)
//   --alloc-json  like --alloc, but the per-file JSON object grows an
//               "alloc" member (implies --json)
//   --json      machine-readable output: one JSON object per input
//
// Exit codes (the contract shared with the library, diagnostic.hpp):
//   0  no diagnostics (warnings allowed unless --strict)
//   1  at least one error, or any diagnostic under --strict
//   2  usage error or unparseable input
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/alloc.hpp"
#include "analysis/domain.hpp"
#include "analysis/lints.hpp"
#include "analysis/optimizer.hpp"
#include "analysis/planner.hpp"
#include "analysis/program_text.hpp"
#include "analysis/rules.hpp"
#include "analysis/verifier.hpp"

namespace {

using namespace ae;
using analysis::kExitClean;
using analysis::kExitErrors;
using analysis::kExitUsage;

struct CliOptions {
  bool strict = false;
  bool quiet = false;
  bool echo = false;
  bool plan = false;
  bool lint = false;
  bool opt = false;
  bool domain = false;
  bool alloc = false;
  bool json = false;
  std::vector<std::string> files;
};

void print_usage(std::ostream& os) {
  os << "usage: aeverify [--strict] [--quiet] [--echo] [--plan] [--lint] "
        "[--opt] [--opt-json] [--domain] [--domain-json] [--alloc] "
        "[--alloc-json] [--json] <program ...|->\n"
        "       aeverify --rules | --golden | --demo-bad\n"
        "exit codes: 0 clean, 1 errors (any finding under --strict), "
        "2 usage/parse error\n";
}

void print_rules() {
  std::cout << "rule     severity  summary\n";
  for (const analysis::rules::RuleInfo& rule : analysis::rules::catalog()) {
    std::cout << rule.id << "   " << analysis::to_string(rule.severity)
              << (rule.severity == analysis::Severity::Error ? "     "
                                                             : "   ")
              << rule.summary << "\n";
  }
}

// The built-in known-good programs mirror the golden-trace workloads
// (tests/golden): an inter/intra pipeline and a seeded segmentation.  CI
// runs `aeverify --golden` as the "no false positives on the canonical
// workloads" smoke check.
const char* const kGoldenPrograms[] = {
    // intra_con8.trace workload: 3x3 gradient over one input frame.
    "input  frame 48x32\n"
    "call   grad = intra GradientMag con8 frame\n"
    "output grad\n",
    // faulted_dma.trace workload: inter absolute difference.
    "input  cur 64x48\n"
    "input  ref 64x48\n"
    "call   diff = inter AbsDiff cur ref\n"
    "output diff\n",
    // Seeded segmentation (ids written to Alfa) with a downstream consumer.
    "input  frame 48x32\n"
    "call   seg  = segment Copy con4 frame seeds=(4,4),(30,20) luma=18"
    " out=y+alfa\n"
    "call   mask = intra Threshold con0 seg threshold=10\n"
    "output mask\n",
};

// The built-in ill-formed program: the PR 2 duplicate-slot class (AEV210)
// plus a use-before-write (AEV200).  `aeverify --demo-bad` must exit 1;
// CI asserts that with `! aeverify --demo-bad`.
const char* const kDemoBadProgram =
    "input  frame 48x32\n"
    "call   diff = inter AbsDiff frame frame\n"  // AEV210: both banks, 1 copy
    "call   mask = intra Threshold con0 ghost\n"  // AEV200: never produced
    "output diff\n"
    "output mask\n";

int verify_text(const std::string& label, const std::string& text,
                const CliOptions& options) {
  analysis::CallProgram program;
  try {
    program = analysis::parse_program(text);
  } catch (const analysis::ParseError& error) {
    std::cerr << label << ": parse error: " << error.what() << "\n";
    return kExitUsage;
  }
  if (options.echo) std::cout << analysis::format_program(program);
  analysis::Report report = analysis::verify_program(program);

  analysis::ProgramPlan plan;
  const bool need_plan = options.plan || options.lint;
  if (need_plan) plan = analysis::plan_program(program);
  if (options.lint) report.merge(analysis::lint_program(program, plan));

  // aeopt runs only on programs the verifier accepts: rewriting an
  // ill-formed program is meaningless (and optimize_program refuses it).
  analysis::OptimizeResult opt;
  const bool ran_opt = options.opt && !report.has_errors();
  if (ran_opt) opt = analysis::optimize_program(program);

  analysis::ProgramDomain domain;
  if (options.domain) domain = analysis::analyze_domain(program);

  // Like aeopt, the allocator only makes sense over programs the verifier
  // accepts (allocate_residency prices via the planner, which assumes a
  // well-formed call sequence).
  analysis::ResidencyPlan alloc;
  const bool ran_alloc = options.alloc && !report.has_errors();
  if (ran_alloc) alloc = analysis::allocate_residency(program);

  if (options.json) {
    // One object per input so pipelines can stream per-file results:
    //   {"file":..., "report":{...}[, "plan":{...}][, "opt":{...}]
    //    [, "domain":{...}][, "alloc":{...}]}
    std::cout << "{\"file\":" << analysis::json_quote(label)
              << ",\"report\":" << analysis::report_json(report);
    if (options.plan)
      std::cout << ",\"plan\":" << analysis::plan_json(plan, program);
    if (ran_opt)
      std::cout << ",\"opt\":{\"log\":" << analysis::rewrite_log_json(opt.log)
                << ",\"changed\":" << (opt.changed ? "true" : "false")
                << ",\"program\":"
                << analysis::json_quote(
                       analysis::format_program(opt.program))
                << '}';
    if (options.domain)
      std::cout << ",\"domain\":" << analysis::domain_json(program, domain);
    if (ran_alloc)
      std::cout << ",\"alloc\":" << analysis::alloc_json(alloc, program);
    std::cout << "}\n";
    return report.exit_code(options.strict);
  }

  if (!options.quiet) {
    for (const analysis::Diagnostic& d : report.diagnostics())
      std::cout << d.format() << "\n";
    if (options.plan) std::cout << plan.format(program) << "\n";
    if (ran_opt) {
      std::cout << analysis::format_rewrite_log(opt.log);
      if (opt.changed) std::cout << analysis::format_program(opt.program);
    }
    if (options.domain) std::cout << analysis::format_domain(program, domain);
    if (ran_alloc) std::cout << alloc.format(program) << "\n";
  }
  std::cout << label << ": " << report.error_count() << " error(s), "
            << report.warning_count() << " warning(s)\n";
  return report.exit_code(options.strict);
}

int run_builtin(const CliOptions& options, bool bad) {
  int worst = kExitClean;
  if (bad) return verify_text("demo-bad", kDemoBadProgram, options);
  int index = 0;
  for (const char* text : kGoldenPrograms) {
    const int code =
        verify_text("golden[" + std::to_string(index++) + "]", text, options);
    worst = std::max(worst, code);
  }
  return worst;
}

std::string read_input(const std::string& path, bool& ok) {
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
    ok = static_cast<bool>(std::cin) || std::cin.eof();
  } else {
    std::ifstream file(path);
    if (!file) {
      ok = false;
      return {};
    }
    buffer << file.rdbuf();
    ok = true;
  }
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  bool rules = false;
  bool golden = false;
  bool demo_bad = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return kExitClean;
    } else if (arg == "--rules") {
      rules = true;
    } else if (arg == "--golden") {
      golden = true;
    } else if (arg == "--demo-bad") {
      demo_bad = true;
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--echo") {
      options.echo = true;
    } else if (arg == "--plan") {
      options.plan = true;
    } else if (arg == "--lint") {
      options.lint = true;
    } else if (arg == "--opt") {
      options.opt = true;
    } else if (arg == "--opt-json") {
      options.opt = true;
      options.json = true;
    } else if (arg == "--domain") {
      options.domain = true;
    } else if (arg == "--domain-json") {
      options.domain = true;
      options.json = true;
    } else if (arg == "--alloc") {
      options.alloc = true;
    } else if (arg == "--alloc-json") {
      options.alloc = true;
      options.json = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "aeverify: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return kExitUsage;
    } else {
      options.files.push_back(arg);
    }
  }

  if (rules) {
    print_rules();
    return kExitClean;
  }
  if (golden || demo_bad) {
    if (!options.files.empty()) {
      std::cerr << "aeverify: --golden/--demo-bad take no file arguments\n";
      return kExitUsage;
    }
    return run_builtin(options, demo_bad);
  }
  if (options.files.empty()) {
    print_usage(std::cerr);
    return kExitUsage;
  }

  int worst = kExitClean;
  for (const std::string& path : options.files) {
    bool ok = false;
    const std::string text = read_input(path, ok);
    if (!ok) {
      std::cerr << "aeverify: cannot read '" << path << "'\n";
      return kExitUsage;
    }
    worst = std::max(worst, verify_text(path, text, options));
  }
  return worst;
}
