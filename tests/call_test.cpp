// Call descriptor tests: builders, validation matrix, stats merging.
#include <gtest/gtest.h>

#include "addresslib/call.hpp"
#include "image/synth.hpp"

namespace ae::alib {
namespace {

img::Image frame() { return img::make_test_frame(Size{16, 16}, 1); }

TEST(CallBuilders, InterDefaults) {
  const Call c = Call::make_inter(PixelOp::AbsDiff);
  EXPECT_EQ(c.mode, Mode::Inter);
  EXPECT_EQ(c.op, PixelOp::AbsDiff);
  EXPECT_EQ(c.in_channels, ChannelMask::y());
  EXPECT_EQ(c.scan, ScanOrder::RowMajor);
}

TEST(CallBuilders, SegmentCarriesSpec) {
  SegmentSpec spec;
  spec.seeds = {{1, 1}};
  spec.luma_threshold = 7;
  const Call c = Call::make_segment(PixelOp::Copy, Neighborhood::con0(), spec,
                                    ChannelMask::y(),
                                    ChannelMask::y().with(Channel::Alfa));
  EXPECT_EQ(c.mode, Mode::Segment);
  EXPECT_EQ(c.segment.luma_threshold, 7);
  EXPECT_EQ(c.segment.seeds.size(), 1u);
}

TEST(CallDescribe, MentionsKeyFields) {
  const Call c = Call::make_intra(PixelOp::Erode, Neighborhood::con8());
  const std::string d = c.describe();
  EXPECT_NE(d.find("intra"), std::string::npos);
  EXPECT_NE(d.find("Erode"), std::string::npos);
  EXPECT_NE(d.find("CON_8"), std::string::npos);
}

TEST(CallValidation, InterNeedsSecondFrame) {
  const img::Image a = frame();
  const Call c = Call::make_inter(PixelOp::Add);
  EXPECT_THROW(validate_call(c, a, nullptr), InvalidArgument);
  const img::Image b = frame();
  EXPECT_NO_THROW(validate_call(c, a, &b));
}

TEST(CallValidation, InterNeedsEqualSizes) {
  const img::Image a = frame();
  const img::Image b = img::make_test_frame(Size{8, 8}, 1);
  EXPECT_THROW(validate_call(Call::make_inter(PixelOp::Add), a, &b),
               InvalidArgument);
}

TEST(CallValidation, ModeOpMismatchRejected) {
  const img::Image a = frame();
  const img::Image b = frame();
  Call inter_with_intra_op = Call::make_inter(PixelOp::Add);
  inter_with_intra_op.op = PixelOp::Erode;
  EXPECT_THROW(validate_call(inter_with_intra_op, a, &b), InvalidArgument);

  Call intra_with_inter_op = Call::make_intra(PixelOp::Copy,
                                              Neighborhood::con0());
  intra_with_inter_op.op = PixelOp::AbsDiff;
  EXPECT_THROW(validate_call(intra_with_inter_op, a, nullptr),
               InvalidArgument);
}

TEST(CallValidation, EmptyFrameRejected) {
  const img::Image empty;
  EXPECT_THROW(validate_call(Call::make_intra(PixelOp::Copy,
                                              Neighborhood::con0()),
                             empty, nullptr),
               InvalidArgument);
}

TEST(CallValidation, SegmentSeedChecks) {
  const img::Image a = frame();
  SegmentSpec spec;  // no seeds
  Call c = Call::make_segment(PixelOp::Copy, Neighborhood::con0(), spec,
                              ChannelMask::y(),
                              ChannelMask::y().with(Channel::Alfa));
  EXPECT_THROW(validate_call(c, a, nullptr), InvalidArgument);

  c.segment.seeds = {{99, 99}};  // outside
  EXPECT_THROW(validate_call(c, a, nullptr), InvalidArgument);

  c.segment.seeds = {{3, 3}};
  c.segment.luma_threshold = -1;
  EXPECT_THROW(validate_call(c, a, nullptr), InvalidArgument);

  c.segment.luma_threshold = 10;
  EXPECT_NO_THROW(validate_call(c, a, nullptr));
}

TEST(CallValidation, WriteIdsNeedsAlfaOut) {
  const img::Image a = frame();
  SegmentSpec spec;
  spec.seeds = {{3, 3}};
  spec.write_ids = true;
  Call c = Call::make_segment(PixelOp::Copy, Neighborhood::con0(), spec,
                              ChannelMask::y(), ChannelMask::y());
  EXPECT_THROW(validate_call(c, a, nullptr), InvalidArgument);
}

TEST(CallStatsTest, MergeSumsAllFields) {
  CallStats a;
  a.pixels = 10;
  a.loads = 5;
  a.stores = 2;
  a.cycles = 100;
  a.profile.address_calc = 7;
  a.model_seconds = 0.5;
  CallStats b = a;
  b.merge(a);
  EXPECT_EQ(b.pixels, 20);
  EXPECT_EQ(b.loads, 10u);
  EXPECT_EQ(b.stores, 4u);
  EXPECT_EQ(b.cycles, 200u);
  EXPECT_EQ(b.profile.address_calc, 14u);
  EXPECT_DOUBLE_EQ(b.model_seconds, 1.0);
  EXPECT_EQ(b.access_transactions(), 14u);
}

TEST(ModeNames, ToString) {
  EXPECT_EQ(to_string(Mode::Inter), "inter");
  EXPECT_EQ(to_string(Mode::Intra), "intra");
  EXPECT_EQ(to_string(Mode::Segment), "segment");
}

}  // namespace
}  // namespace ae::alib
