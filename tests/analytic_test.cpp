// Direct unit tests of the closed-form timing model's structure (the
// cross-validation against the cycle simulator lives in
// engine_timing_test.cpp; here the formulas themselves are pinned).
#include <gtest/gtest.h>

#include <cmath>

#include "core/analytic.hpp"

namespace ae::core {
namespace {

alib::Call intra_call() {
  alib::OpParams p;
  p.coeffs.assign(9, 1);
  p.shift = 3;
  return alib::Call::make_intra(alib::PixelOp::Convolve,
                                alib::Neighborhood::con8(), ChannelMask::y(),
                                ChannelMask::y(), p);
}

TEST(AnalyticModel, InputBusyIsWordsOverEfficiency) {
  const EngineConfig cfg;
  const Size frame{352, 288};
  const AnalyticTiming t = analytic_streamed_timing(cfg, intra_call(), frame);
  const double words = 2.0 * static_cast<double>(frame.area());
  EXPECT_EQ(t.input_busy_cycles,
            static_cast<u64>(std::ceil(words / cfg.bus_efficiency)));
}

TEST(AnalyticModel, InterDoublesInputTraffic) {
  const EngineConfig cfg;
  const Size frame{352, 288};
  const AnalyticTiming intra =
      analytic_streamed_timing(cfg, intra_call(), frame);
  const AnalyticTiming inter = analytic_streamed_timing(
      cfg, alib::Call::make_inter(alib::PixelOp::AbsDiff), frame);
  EXPECT_EQ(inter.input_busy_cycles, 2 * intra.input_busy_cycles);
  EXPECT_EQ(inter.output_busy_cycles, intra.output_busy_cycles);
}

TEST(AnalyticModel, OverheadCountsStripChunks) {
  const EngineConfig cfg;
  const Size frame{352, 288};  // 18 strips of 16 lines
  const AnalyticTiming t = analytic_streamed_timing(cfg, intra_call(), frame);
  EXPECT_EQ(t.input_overhead_cycles,
            (18 + 1) * static_cast<u64>(cfg.interrupt_overhead_cycles));
  const AnalyticTiming inter = analytic_streamed_timing(
      cfg, alib::Call::make_inter(alib::PixelOp::AbsDiff), frame);
  EXPECT_EQ(inter.input_overhead_cycles,
            (2 * 18 + 1) * static_cast<u64>(cfg.interrupt_overhead_cycles));
}

TEST(AnalyticModel, ColumnScanCountsVerticalStrips) {
  const EngineConfig cfg;
  alib::Call call = intra_call();
  call.scan = alib::ScanOrder::ColumnMajor;
  const Size frame{352, 288};  // 22 vertical strips of 16 columns
  const AnalyticTiming t = analytic_streamed_timing(cfg, call, frame);
  EXPECT_EQ(t.input_overhead_cycles,
            (22 + 1) * static_cast<u64>(cfg.interrupt_overhead_cycles));
}

TEST(AnalyticModel, StrictInterAddsNonOverlappedProcessing) {
  EngineConfig strict;
  strict.strict_inter_sequencing = true;
  const EngineConfig relaxed;
  const Size frame{352, 288};
  const alib::Call inter = alib::Call::make_inter(alib::PixelOp::AbsDiff);
  const AnalyticTiming ts = analytic_streamed_timing(strict, inter, frame);
  const AnalyticTiming tr = analytic_streamed_timing(relaxed, inter, frame);
  EXPECT_GT(ts.total_cycles, tr.total_cycles);
  // The extra time is on the order of the paper's 12.5% of transfers.
  const double extra = static_cast<double>(ts.total_cycles - tr.total_cycles);
  const double transfers = static_cast<double>(
      tr.input_busy_cycles + tr.output_busy_cycles);
  EXPECT_GT(extra / transfers, 0.05);
  EXPECT_LT(extra / transfers, 0.25);
}

TEST(AnalyticModel, WiderBusHalvesBusyCycles) {
  EngineConfig wide;
  wide.bus_width_bits = 64;
  const EngineConfig narrow;
  const Size frame{352, 288};
  const AnalyticTiming tn =
      analytic_streamed_timing(narrow, intra_call(), frame);
  const AnalyticTiming tw = analytic_streamed_timing(wide, intra_call(), frame);
  EXPECT_NEAR(static_cast<double>(tw.input_busy_cycles),
              static_cast<double>(tn.input_busy_cycles) / 2.0, 2.0);
}

TEST(AnalyticModel, SegmentTimingScalesWithTraversal) {
  const EngineConfig cfg;
  alib::SegmentSpec spec;
  spec.seeds = {{0, 0}};
  const alib::Call call = alib::Call::make_segment(
      alib::PixelOp::Copy, alib::Neighborhood::con8(), spec, ChannelMask::y(),
      ChannelMask::y().with(Channel::Alfa));
  const Size frame{64, 48};
  const AnalyticTiming small =
      analytic_segment_timing(cfg, call, frame, 100, 300);
  const AnalyticTiming large =
      analytic_segment_timing(cfg, call, frame, 1000, 3000);
  EXPECT_GT(large.tail_cycles, small.tail_cycles);
  EXPECT_EQ(large.input_busy_cycles, small.input_busy_cycles);
  // Per visit: nbhd.size() + 1 cycles, plus one per criterion test.
  EXPECT_EQ(small.tail_cycles, 100u * 10 + 300u);
}

TEST(AnalyticModel, RunStatsIncludeCallOverhead) {
  const EngineConfig cfg;
  const Size frame{64, 48};
  const AnalyticTiming t = analytic_streamed_timing(cfg, intra_call(), frame);
  const EngineRunStats run = analytic_run_stats(cfg, intra_call(), frame);
  EXPECT_EQ(run.cycles, t.total_cycles + cfg.call_setup_overhead_cycles);
  EXPECT_EQ(run.zbt_read_transactions, static_cast<u64>(frame.area()));
  EXPECT_EQ(run.zbt_write_transactions, static_cast<u64>(frame.area()));
}

TEST(AnalyticModel, SegmentStatsNeedTraversalSize) {
  const EngineConfig cfg;
  alib::SegmentSpec spec;
  spec.seeds = {{0, 0}};
  const alib::Call call = alib::Call::make_segment(
      alib::PixelOp::Copy, alib::Neighborhood::con0(), spec, ChannelMask::y(),
      ChannelMask::y().with(Channel::Alfa));
  EXPECT_THROW(analytic_run_stats(cfg, call, Size{32, 32}),
               InvalidArgument);
  EXPECT_NO_THROW(analytic_run_stats(cfg, call, Size{32, 32}, 500, 2000));
}

TEST(AnalyticModel, PlcInstructionMix) {
  const EngineConfig cfg;
  const Size frame{48, 32};
  const EngineRunStats run = analytic_run_stats(cfg, intra_call(), frame);
  EXPECT_EQ(run.plc.load_instr, 32u);             // one per line
  EXPECT_EQ(run.plc.shift_instr, 48u * 32 - 32);  // the rest
  EXPECT_EQ(run.plc.pixel_cycles, 48u * 32);
}

}  // namespace
}  // namespace ae::core
