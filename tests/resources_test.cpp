// Table 1 resource estimator tests: the calibrated model must land on the
// paper's ISE 6 snapshot at the default configuration and scale sensibly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/resources.hpp"

namespace ae::core {
namespace {

TEST(Resources, DefaultConfigMatchesPaperSnapshot) {
  const ResourceEstimate e = estimate_resources(EngineConfig{});
  const ResourceEstimate paper = paper_table1();
  EXPECT_EQ(e.slices, paper.slices);
  EXPECT_EQ(e.flip_flops, paper.flip_flops);
  EXPECT_EQ(e.luts, paper.luts);
  EXPECT_EQ(e.iobs, paper.iobs);
  EXPECT_EQ(e.gclks, paper.gclks);
  // BRAM: the paper reports 29 while its own text describes 32 IIM blocks
  // plus an equal OIM; our structural model is documented to land within a
  // few blocks of the snapshot.
  EXPECT_NEAR(e.brams, paper.brams, 3.01);
  EXPECT_NEAR(e.min_period_ns, paper.min_period_ns, 0.01);
}

TEST(Resources, MaxFrequencyMatchesPaper) {
  const ResourceEstimate e = estimate_resources(EngineConfig{});
  EXPECT_NEAR(e.max_frequency_mhz(), 102.208, 0.5);
}

TEST(Resources, FmaxExceedsBusClock) {
  // The design is bus-clocked at 66 MHz precisely because synthesis closes
  // far above it.
  const ResourceEstimate e = estimate_resources(EngineConfig{});
  EXPECT_GT(e.max_frequency_mhz(), EngineConfig{}.clock_mhz);
}

TEST(Resources, UtilizationPercentagesMatchTable) {
  const DeviceCapacity dev;
  const ResourceEstimate paper = paper_table1();
  // "Number of Slices: 564 out of 14336 = 3%" etc.
  EXPECT_EQ(static_cast<int>(utilization(paper.slices, dev.slices) * 100), 3);
  EXPECT_EQ(static_cast<int>(utilization(paper.luts, dev.luts) * 100), 1);
  EXPECT_EQ(static_cast<int>(utilization(paper.iobs, dev.iobs) * 100), 8);
  EXPECT_EQ(static_cast<int>(std::lround(
                utilization(paper.brams, dev.brams) * 100)),
            30);
  EXPECT_EQ(static_cast<int>(std::lround(
                utilization(paper.gclks, dev.gclks) * 100)),
            6);
}

TEST(Resources, RoomLeftForSegmentAddressing) {
  // "there is enough free memory for a possible extension of the design
  // with other addressing schemes."
  const DeviceCapacity dev;
  const ResourceEstimate e = estimate_resources(EngineConfig{});
  EXPECT_LT(utilization(e.brams, dev.brams), 0.5);
  EXPECT_LT(utilization(e.slices, dev.slices), 0.1);
}

TEST(Resources, BramScalesWithIimDepth) {
  EngineConfig deeper;
  deeper.iim_lines = 32;
  deeper.strip_lines = 32;
  const int base = estimate_resources(EngineConfig{}).brams;
  const int more = estimate_resources(deeper).brams;
  EXPECT_GT(more, base);
}

TEST(Resources, IobScalesWithBusWidth) {
  EngineConfig wide;
  wide.bus_width_bits = 64;
  EXPECT_EQ(estimate_resources(wide).iobs,
            estimate_resources(EngineConfig{}).iobs + 32);
}

TEST(Resources, EstimateRejectsInvalidConfig) {
  EngineConfig bad;
  bad.zbt_banks = 2;
  EXPECT_THROW(estimate_resources(bad), InvalidArgument);
}

TEST(Resources, UtilizationHandlesZeroCapacity) {
  EXPECT_EQ(utilization(5, 0), 0.0);
}

}  // namespace
}  // namespace ae::core
