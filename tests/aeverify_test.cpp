// aeverify — the static call-program verifier, tested differentially
// against the dynamic failures it must pre-empt:
//
//   * every known-bad call (test_util.hpp's generator) is flagged with its
//     expected rule *and* rejected by a live backend,
//   * the 520 known-good random calls of the differential fuzz recipes
//     (8 seeds x 40 kernel cases + 200 farm cases) produce zero errors —
//     the no-false-positives gate,
//   * the PR 2 duplicate-slot bug class (one frame feeding both inputs of
//     an inter call) is reconstructed and statically rejected in program
//     form and through every guard layer (EngineSession, ResilientSession,
//     EngineFarm with validate_before_execute),
//   * the text form round-trips and the exit-code contract holds.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/program_text.hpp"
#include "analysis/rules.hpp"
#include "analysis/verifier.hpp"
#include "core/core.hpp"
#include "serve/farm.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::Neighborhood;
using alib::PixelOp;
using analysis::CallProgram;
using analysis::Report;
using analysis::Severity;

// ---- catalog / report plumbing ---------------------------------------------

TEST(RuleCatalog, IsStableAndUnique) {
  const auto& rules = analysis::rules::catalog();
  EXPECT_GE(rules.size(), 23u);
  std::set<std::string> ids;
  for (const auto& rule : rules) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
    const std::string prefix = std::string(rule.id).substr(0, 3);
    EXPECT_TRUE(prefix == "AEV" || prefix == "AEW") << rule.id;
    // AEW lints are advisory by contract: always warnings.
    if (prefix == "AEW") {
      EXPECT_EQ(rule.severity, Severity::Warning);
    }
    EXPECT_FALSE(std::string(rule.summary).empty());
  }
  // Severity spot checks the docs table and the tests key on.
  const auto severity_of = [&](const char* id) {
    for (const auto& rule : rules)
      if (std::string(rule.id) == id) return rule.severity;
    ADD_FAILURE() << "missing rule " << id;
    return Severity::Error;
  };
  EXPECT_EQ(severity_of(analysis::rules::kZbtDuplicateSlot), Severity::Error);
  EXPECT_EQ(severity_of(analysis::rules::kUseBeforeWrite), Severity::Error);
  EXPECT_EQ(severity_of(analysis::rules::kStripUnaligned), Severity::Warning);
  EXPECT_EQ(severity_of(analysis::rules::kWindowExceedsFrame),
            Severity::Warning);
  EXPECT_EQ(severity_of(analysis::rules::kDeadResult), Severity::Warning);
  EXPECT_EQ(severity_of(analysis::rules::kSegmentIdOverlap),
            Severity::Warning);
}

TEST(Report, ExitCodeContract) {
  Report clean;
  EXPECT_EQ(clean.exit_code(false), analysis::kExitClean);
  EXPECT_EQ(clean.exit_code(true), analysis::kExitClean);

  Report warned;
  warned.add(Severity::Warning, analysis::rules::kStripUnaligned, 0, "short");
  EXPECT_EQ(warned.exit_code(false), analysis::kExitClean);
  EXPECT_EQ(warned.exit_code(true), analysis::kExitErrors);
  EXPECT_FALSE(warned.has_errors());
  EXPECT_EQ(warned.warning_count(), 1u);

  Report failed;
  failed.add(Severity::Error, analysis::rules::kArityMismatch, 3,
             "inter call has no second input frame", "pass both frames");
  EXPECT_EQ(failed.exit_code(false), analysis::kExitErrors);
  EXPECT_TRUE(failed.mentions(analysis::rules::kArityMismatch));
  const std::string line = failed.diagnostics().front().format();
  EXPECT_NE(line.find("AEV101"), std::string::npos);
  EXPECT_NE(line.find("@call 3"), std::string::npos);
  EXPECT_NE(line.find("hint"), std::string::npos);
}

TEST(Report, EnforceThrowsTypedErrorCarryingTheReport) {
  Report warned;
  warned.add(Severity::Warning, analysis::rules::kDeadResult, 1, "dead");
  EXPECT_NO_THROW(analysis::enforce(warned));

  Report failed;
  failed.add(Severity::Error, analysis::rules::kZbtDuplicateSlot, 0,
             "one frame, both bank pairs");
  try {
    analysis::enforce(failed);
    FAIL() << "enforce() must throw on errors";
  } catch (const analysis::VerificationError& error) {
    EXPECT_TRUE(error.report().mentions(analysis::rules::kZbtDuplicateSlot));
    EXPECT_NE(std::string(error.what()).find("AEV210"), std::string::npos);
  }
}

// ---- the PR 2 duplicate-slot class, statically rejected --------------------

TEST(DuplicateSlot, ProgramFormIsRejected) {
  CallProgram program;
  const i32 frame = program.add_input(Size{48, 32}, "frame");
  const i32 diff =
      program.add_call(Call::make_inter(PixelOp::AbsDiff), frame, frame);
  program.mark_output(diff);

  const Report report = analysis::verify_program(program);
  EXPECT_TRUE(report.has_errors());
  ASSERT_TRUE(report.mentions(analysis::rules::kZbtDuplicateSlot));
  EXPECT_EQ(report.by_rule(analysis::rules::kZbtDuplicateSlot)
                .front()
                .call_index,
            0);
}

TEST(DuplicateSlot, TextFormIsRejected) {
  const Report report = analysis::verify_program(analysis::parse_program(
      "input  frame 48x32\n"
      "call   diff = inter AbsDiff frame frame\n"
      "output diff\n"));
  EXPECT_TRUE(report.mentions(analysis::rules::kZbtDuplicateSlot));
}

TEST(DuplicateSlot, SessionGuardRejectsAliasedImages) {
  core::SessionOptions options;
  options.validate_before_execute = true;
  core::EngineSession session({}, options);

  const img::Image a = test::small_frame();
  const Call diff = Call::make_inter(PixelOp::AbsDiff);
  // Same object through both inputs.
  EXPECT_THROW(session.execute(diff, a, &a), analysis::VerificationError);
  // Distinct objects, identical content: the residency cache would still
  // satisfy both claims from one on-board copy.
  const img::Image copy = test::small_frame();
  EXPECT_THROW(session.execute(diff, a, &copy),
               analysis::VerificationError);
  // Distinct content is fine — and the guard costs nothing when off.
  const img::Image b = test::small_frame_b();
  EXPECT_NO_THROW(session.execute(diff, a, &b));
  core::EngineSession unguarded({}, {});
  EXPECT_NO_THROW(unguarded.execute(diff, a, &a));
}

TEST(DuplicateSlot, ResilientGuardRejectsBeforeAnyAccounting) {
  core::ResilientOptions options;
  options.session.validate_before_execute = true;
  core::ResilientSession session({}, options);

  const img::Image a = test::small_frame();
  EXPECT_THROW(session.execute(Call::make_inter(PixelOp::AbsDiff), a, &a),
               analysis::VerificationError);
  // A statically rejected call must not move the driver's accounting: no
  // call counted, no retry burned, breaker untouched.
  EXPECT_EQ(session.stats().calls, 0);
  EXPECT_EQ(session.stats().engine_attempts, 0);
  EXPECT_TRUE(session.healthy());

  const img::Image b = test::small_frame_b();
  EXPECT_NO_THROW(
      session.execute(Call::make_inter(PixelOp::AbsDiff), a, &b));
  EXPECT_EQ(session.stats().calls, 1);
}

TEST(DuplicateSlot, FarmGuardRejectsInTheCallersContext) {
  serve::FarmOptions options;
  options.shards = 2;
  options.validate_before_execute = true;
  serve::EngineFarm farm(options);

  const img::Image a = test::small_frame();
  // submit() itself throws — the bad call never reaches a shard worker.
  EXPECT_THROW(farm.submit(Call::make_inter(PixelOp::AbsDiff), a, &a),
               analysis::VerificationError);

  const img::Image b = test::small_frame_b();
  auto future = farm.submit(Call::make_inter(PixelOp::AbsDiff), a, &b);
  EXPECT_NO_THROW(future.get());
  farm.shutdown();
  EXPECT_EQ(farm.stats().completed, 1);
}

// ---- differential: known-bad calls vs the dynamic failures -----------------

TEST(DifferentialBadCalls, StaticallyFlaggedAndDynamicallyRejected) {
  core::EngineBackend engine({}, core::EngineMode::CycleAccurate);
  std::set<std::string> fired;
  for (u64 seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 0xBAD5EED0DDF00D1ull);
    for (test::BadCall& bad : test::known_bad_calls(rng)) {
      SCOPED_TRACE(std::string(bad.what) + " [seed " + std::to_string(seed) +
                   "]");
      // Static: the verifier flags exactly this rule class as an error.
      const Size* b_size = bad.pass_b ? &bad.size_b : nullptr;
      const Report report =
          analysis::verify_call(bad.call, bad.size, b_size, false);
      EXPECT_TRUE(report.has_errors());
      ASSERT_TRUE(report.mentions(bad.rule_id)) << report.format();
      for (const analysis::Diagnostic& d : report.by_rule(bad.rule_id)) {
        EXPECT_EQ(d.severity, Severity::Error);
        EXPECT_FALSE(d.fix_hint.empty()) << d.rule_id;
        fired.insert(d.rule_id);
      }
      // Dynamic: the live backend rejects the same call (validate_call,
      // validate_frame, or segment-id exhaustion mid-expansion).
      const img::Image a = img::make_test_frame(bad.size, rng.next_u64());
      const img::Image b = img::make_test_frame(bad.size_b, rng.next_u64());
      EXPECT_THROW(engine.execute(bad.call, a, bad.pass_b ? &b : nullptr),
                   Error);
    }
  }
  // The acceptance bar: at least 8 distinct rules fire differentially.
  EXPECT_GE(fired.size(), 8u) << "rules covered: " << fired.size();
}

// ---- no false positives on the known-good fuzz corpus ----------------------

TEST(DifferentialKnownGood, KernelRecipeHasZeroErrors) {
  // Exactly the 320 calls of KernelVsFunctional (8 seeds x 40 cases),
  // including the generator's frame-content draws so the streams match.
  int verified = 0;
  for (u64 seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0xA24BAED4963EE407ull);
    for (int i = 0; i < 40; ++i) {
      const Size size = test::random_frame_size(rng);
      bool needs_b = false;
      const Call call = test::random_any_call(rng, size, needs_b);
      rng.next_u64();  // frame a content draw in the differential suite
      rng.next_u64();  // frame b content draw
      const Size b = size;
      const Report report =
          analysis::verify_call(call, size, needs_b ? &b : nullptr, false);
      EXPECT_EQ(report.error_count(), 0u)
          << "seed " << seed << " case " << i << ": " << call.describe()
          << "\n" << report.format();
      ++verified;
    }
  }
  EXPECT_EQ(verified, 320);
}

TEST(DifferentialKnownGood, FarmRecipeHasZeroErrors) {
  // The 200-call farm differential workload (seed 0xD1FF).
  Rng rng(0xD1FFu);
  for (int i = 0; i < 200; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    rng.bounded(6);  // frame a content seed draw in the farm suite
    rng.bounded(6);  // frame b content seed draw
    const Size b = size;
    const Report report =
        analysis::verify_call(call, size, needs_b ? &b : nullptr, false);
    EXPECT_EQ(report.error_count(), 0u)
        << "case " << i << ": " << call.describe() << "\n" << report.format();
  }
}

// ---- warning rules ---------------------------------------------------------

TEST(WarningRules, OversizedWindowAndShortStripWarnButPass) {
  const Call call =
      Call::make_intra(PixelOp::Median, Neighborhood::rect(9, 9));
  const Report report = analysis::verify_call(call, Size{5, 5}, nullptr,
                                              false);
  EXPECT_FALSE(report.has_errors());
  EXPECT_TRUE(report.mentions(analysis::rules::kWindowExceedsFrame));
  EXPECT_TRUE(report.mentions(analysis::rules::kStripUnaligned));
  EXPECT_EQ(report.exit_code(false), analysis::kExitClean);
  EXPECT_EQ(report.exit_code(true), analysis::kExitErrors);

  // The alignment warning is optional for software-only workloads.
  analysis::VerifyOptions no_alignment;
  no_alignment.check_alignment = false;
  EXPECT_FALSE(analysis::verify_call(call, Size{5, 5}, nullptr, false,
                                     no_alignment)
                   .mentions(analysis::rules::kStripUnaligned));
}

TEST(WarningRules, DegenerateFrameIsAnError) {
  const Report report = analysis::verify_call(
      Call::make_intra(PixelOp::Copy, Neighborhood::con0()), Size{0, 0},
      nullptr, false);
  EXPECT_TRUE(report.mentions(analysis::rules::kDegenerateFrame));
  EXPECT_TRUE(report.has_errors());
}

// ---- whole-program dataflow ------------------------------------------------

TEST(ProgramDataflow, UseBeforeWriteAndDeadResults) {
  CallProgram program;
  const i32 input = program.add_input(Size{48, 32}, "a");
  // Reads a frame id no call has produced (forward/unknown reference).
  program.add_call(Call::make_intra(PixelOp::Copy, Neighborhood::con0()), 99);
  // Produces a result nobody consumes while outputs are declared.
  program.add_call(
      Call::make_intra(PixelOp::GradientMag, Neighborhood::con8()), input);
  const i32 kept = program.add_call(
      Call::make_intra(PixelOp::Copy, Neighborhood::con0()), input);
  program.mark_output(kept);

  const Report report = analysis::verify_program(program);
  EXPECT_TRUE(report.mentions(analysis::rules::kUseBeforeWrite));
  EXPECT_TRUE(report.mentions(analysis::rules::kDeadResult));
  ASSERT_FALSE(report.by_rule(analysis::rules::kUseBeforeWrite).empty());
  EXPECT_EQ(report.by_rule(analysis::rules::kUseBeforeWrite).front()
                .call_index,
            0);
}

TEST(ProgramDataflow, OverlappingSegmentIdRangesWarn) {
  const Report report = analysis::verify_program(analysis::parse_program(
      "input  frame 48x32\n"
      "call   s1 = segment Copy con4 frame seeds=(2,2),(40,20) luma=10"
      " id_base=100 out=y+alfa\n"
      "call   s2 = segment Copy con4 frame seeds=(8,8),(30,12) luma=10"
      " id_base=101 out=y+alfa\n"
      "output s1\n"
      "output s2\n"));
  EXPECT_FALSE(report.has_errors());
  EXPECT_TRUE(report.mentions(analysis::rules::kSegmentIdOverlap));

  // Disjoint bases stay quiet.
  const Report disjoint = analysis::verify_program(analysis::parse_program(
      "input  frame 48x32\n"
      "call   s1 = segment Copy con4 frame seeds=(2,2),(40,20) luma=10"
      " id_base=100 out=y+alfa\n"
      "call   s2 = segment Copy con4 frame seeds=(8,8),(30,12) luma=10"
      " id_base=200 out=y+alfa\n"
      "output s1\n"
      "output s2\n"));
  EXPECT_FALSE(disjoint.mentions(analysis::rules::kSegmentIdOverlap));
}

// ---- text form -------------------------------------------------------------

TEST(ProgramText, RoundTripIsStable) {
  const std::string text =
      "input  cur 48x32\n"
      "input  ref 48x32\n"
      "call   diff = inter AbsDiff cur ref\n"
      "call   blur = intra Convolve rect3x3 diff scan=col"
      " border=constant bconst=7 coeffs=1,1,1,1,1,1,1,1,1 shift=3\n"
      "call   seg  = segment Copy con4 blur seeds=(4,4),(30,20) luma=18"
      " id_base=5 out=y+alfa\n"
      "output seg\n";
  const CallProgram once = analysis::parse_program(text);
  const std::string rendered = analysis::format_program(once);
  const CallProgram twice = analysis::parse_program(rendered);
  EXPECT_EQ(rendered, analysis::format_program(twice));
  EXPECT_EQ(once.calls().size(), twice.calls().size());
  EXPECT_EQ(once.frames().size(), twice.frames().size());
  // Both parses verify identically (and cleanly).
  EXPECT_EQ(analysis::verify_program(once).error_count(), 0u);
  EXPECT_EQ(analysis::verify_program(twice).error_count(), 0u);
}

// Segment-indexed edge cases: an empty seed list (no explicit seed table)
// and the id range pushed to the top of the 16-bit space must survive the
// text form unchanged, together with every non-default segment knob.
TEST(ProgramText, SegmentIndexedEdgeCasesRoundTrip) {
  CallProgram program;
  const i32 a = program.add_input(Size{48, 32}, "a");

  alib::SegmentSpec empty_seeds;  // seeded from existing labels, no table
  empty_seeds.seeds = {};
  empty_seeds.respect_existing_labels = true;
  program.add_call(alib::Call::make_segment(
                       alib::PixelOp::Copy, alib::Neighborhood::con4(),
                       empty_seeds, ChannelMask::y(),
                       ChannelMask::y().with(Channel::Alfa)),
                   a);

  alib::SegmentSpec max_ids;  // id allocation at the top of the u16 space
  max_ids.seeds = {Point{4, 4}};
  max_ids.id_base = 65534;
  max_ids.connectivity = alib::Connectivity::Four;
  max_ids.chroma_threshold = 12;
  max_ids.write_ids = false;
  program.add_call(alib::Call::make_segment(
                       alib::PixelOp::Copy, alib::Neighborhood::con8(),
                       max_ids, ChannelMask::y(),
                       ChannelMask::y().with(Channel::Alfa)),
                   a);

  const std::string rendered = analysis::format_program(program);
  const CallProgram reparsed = analysis::parse_program(rendered);
  EXPECT_EQ(rendered, analysis::format_program(reparsed));
  ASSERT_EQ(reparsed.calls().size(), 2u);
  const alib::SegmentSpec& s0 = reparsed.calls()[0].call.segment;
  EXPECT_TRUE(s0.seeds.empty());
  EXPECT_TRUE(s0.respect_existing_labels);
  const alib::SegmentSpec& s1 = reparsed.calls()[1].call.segment;
  EXPECT_EQ(s1.id_base, 65534);
  EXPECT_EQ(s1.connectivity, alib::Connectivity::Four);
  EXPECT_EQ(s1.chroma_threshold, 12);
  EXPECT_FALSE(s1.write_ids);
  // The id-space rule still sees the reparsed form: 65534 + new ids may
  // overflow the 16-bit space, which is AEV110's job to flag.
  EXPECT_EQ(analysis::verify_program(program).mentions("AEV110"),
            analysis::verify_program(reparsed).mentions("AEV110"));
}

// Programs built through the API can reference frames that were never
// declared (that is exactly what AEV200 flags).  The text form used to
// render such references as "#<id>", which tokenize() then dropped as a
// comment — the round trip silently changed the program.  They now render
// as a reserved "undeclared" name that parses back to an unknown frame.
TEST(ProgramText, UndeclaredReferencesSurviveTheRoundTrip) {
  CallProgram program;
  const i32 a = program.add_input(Size{48, 32}, "a");
  program.add_call(alib::Call::make_intra(alib::PixelOp::Copy,
                                          alib::Neighborhood::con0()),
                   a);
  program.add_call(alib::Call::make_intra(alib::PixelOp::Copy,
                                          alib::Neighborhood::con0()),
                   /*a=*/99);  // never declared

  const std::string rendered = analysis::format_program(program);
  EXPECT_EQ(rendered.find('#'), std::string::npos)
      << "invalid refs must not render as comments:\n" << rendered;
  const CallProgram reparsed = analysis::parse_program(rendered);
  EXPECT_EQ(rendered, analysis::format_program(reparsed));
  EXPECT_EQ(reparsed.calls().size(), program.calls().size());
  // Both forms carry the same defect to the verifier.
  EXPECT_TRUE(analysis::verify_program(program).mentions(
      analysis::rules::kUseBeforeWrite));
  EXPECT_TRUE(analysis::verify_program(reparsed).mentions(
      analysis::rules::kUseBeforeWrite));
}

// Names the text grammar cannot express (spaces, '=', '#', empty) are
// synthesized away instead of corrupting the rendering.
TEST(ProgramText, UnprintableFrameNamesAreSynthesized) {
  CallProgram program;
  const i32 a = program.add_input(Size{48, 32}, "has space");
  const i32 b = program.add_input(Size{48, 32}, "#looks_like_comment");
  const i32 c = program.add_input(Size{48, 32}, "");
  const i32 r = program.add_call(alib::Call::make_inter(alib::PixelOp::Add),
                                 a, b);
  program.set_frame_name(r, "key=value");
  program.add_call(alib::Call::make_intra(alib::PixelOp::Copy,
                                          alib::Neighborhood::con0()),
                   c);
  program.mark_output(r);

  const std::string rendered = analysis::format_program(program);
  const CallProgram reparsed = analysis::parse_program(rendered);
  EXPECT_EQ(rendered, analysis::format_program(reparsed));
  EXPECT_EQ(reparsed.frames().size(), program.frames().size());
  EXPECT_EQ(reparsed.calls().size(), program.calls().size());
  EXPECT_EQ(analysis::verify_program(reparsed).error_count(),
            analysis::verify_program(program).error_count());
}

// Duplicate names are legal in the API (names are cosmetic there) but
// ambiguous in text; rendering must uniquify instead of silently rebinding
// references on the next parse.
TEST(ProgramText, DuplicateFrameNamesAreUniquified) {
  CallProgram program;
  const i32 a = program.add_input(Size{48, 32}, "frame");
  const i32 b = program.add_input(Size{48, 32}, "frame");
  const i32 r = program.add_call(alib::Call::make_inter(alib::PixelOp::AbsDiff),
                                 a, b);
  program.mark_output(r);

  const std::string rendered = analysis::format_program(program);
  const CallProgram reparsed = analysis::parse_program(rendered);
  EXPECT_EQ(rendered, analysis::format_program(reparsed));
  ASSERT_EQ(reparsed.frames().size(), 3u);
  EXPECT_NE(reparsed.frame_name(0), reparsed.frame_name(1));
  // The inter call still reads two distinct frames (no AEV210 aliasing).
  EXPECT_EQ(reparsed.calls()[0].input_a, 0);
  EXPECT_EQ(reparsed.calls()[0].input_b, 1);
  EXPECT_EQ(analysis::verify_program(reparsed).error_count(), 0u);
}

TEST(ProgramText, SyntaxErrorsCarryLineNumbers) {
  try {
    analysis::parse_program("input a 48x32\nfrobnicate b\n");
    FAIL() << "unknown statement must throw";
  } catch (const analysis::ParseError& error) {
    EXPECT_EQ(error.line(), 2);
  }
  EXPECT_THROW(analysis::parse_program("input a 48by32\n"),
               analysis::ParseError);
  EXPECT_THROW(analysis::parse_program("call x = intra NoSuchOp con0 a\n"),
               analysis::ParseError);
}

TEST(ProgramText, SemanticProblemsSurviveToTheVerifier) {
  // Unknown frame names parse fine; the verifier reports AEV200.
  const Report report = analysis::verify_program(analysis::parse_program(
      "input  a 48x32\n"
      "call   x = intra Copy con0 ghost\n"
      "output x\n"));
  EXPECT_TRUE(report.mentions(analysis::rules::kUseBeforeWrite));
}

}  // namespace
}  // namespace ae
