// Affine GME extension tests: the motion algebra, the position-aware
// GmeAccumAffine kernel, the 6x6 solver, and end-to-end recovery of
// scripted rotation/zoom that the translational model cannot express.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gme/affine_estimator.hpp"
#include "image/compare.hpp"
#include "image/sequence.hpp"
#include "image/synth.hpp"
#include "test_util.hpp"

namespace ae::gme {
namespace {

TEST(AffineMotion, IdentityByDefault) {
  const AffineMotion m;
  double x = 0.0;
  double y = 0.0;
  m.apply(13.0, 7.0, x, y);
  EXPECT_DOUBLE_EQ(x, 13.0);
  EXPECT_DOUBLE_EQ(y, 7.0);
  EXPECT_DOUBLE_EQ(m.linear_deviation(), 0.0);
}

TEST(AffineMotion, ComposeMatchesSequentialApplication) {
  AffineMotion rot;  // small rotation
  rot.a1 = std::cos(0.1);
  rot.a2 = -std::sin(0.1);
  rot.a4 = std::sin(0.1);
  rot.a5 = std::cos(0.1);
  AffineMotion shift = AffineMotion::from_translation({3.0, -2.0});
  const AffineMotion both = rot.compose(shift);
  double x1 = 0.0;
  double y1 = 0.0;
  shift.apply(5.0, 6.0, x1, y1);
  double x2 = 0.0;
  double y2 = 0.0;
  rot.apply(x1, y1, x2, y2);
  double xc = 0.0;
  double yc = 0.0;
  both.apply(5.0, 6.0, xc, yc);
  EXPECT_NEAR(xc, x2, 1e-12);
  EXPECT_NEAR(yc, y2, 1e-12);
}

TEST(AffineMotion, TranslationScaling) {
  AffineMotion m = AffineMotion::from_translation({4.0, 8.0});
  m.a1 = 1.01;
  const AffineMotion half = m.scaled_translation(0.5);
  EXPECT_DOUBLE_EQ(half.a0, 2.0);
  EXPECT_DOUBLE_EQ(half.a3, 4.0);
  EXPECT_DOUBLE_EQ(half.a1, 1.01);  // linear part untouched
}

TEST(WarpAffine, MatchesTranslationalWarpForPureShift) {
  const img::Image src = img::make_test_frame(Size{32, 24}, 1);
  const img::Image a = warp_affine(src, AffineMotion::from_translation({2.5, 1.25}));
  const img::Image b = warp_translational(src, {2.5, 1.25});
  EXPECT_EQ(img::count_differing(a, b, ChannelMask::yuv()), 0);
}

TEST(WarpAffine, ScalingSamplesCorrectly) {
  img::Image src(Size{8, 8});
  for (i32 y = 0; y < 8; ++y)
    for (i32 x = 0; x < 8; ++x)
      src.at(x, y).y = static_cast<u8>(10 * x);
  AffineMotion zoom;
  zoom.a1 = 2.0;  // out(x) samples src(2x)
  const img::Image out = warp_affine(src, zoom);
  EXPECT_EQ(out.at(2, 0).y, src.at(4, 0).y);
  EXPECT_EQ(out.at(3, 3).y, src.at(6, 3).y);
}

TEST(GmeAccumAffineKernel, AccumulatesJacobianOuterProduct) {
  alib::OpParams p;
  p.threshold = 100;
  alib::SideAccum side;
  img::Pixel ref = img::Pixel::gray(120);
  img::Pixel warped = img::Pixel::gray(100);  // r = 20
  warped.alfa = static_cast<u16>(alib::kGradBias + 2);  // gx = 2
  warped.aux = static_cast<u16>(alib::kGradBias - 1);   // gy = -1
  alib::apply_inter(alib::PixelOp::GmeAccumAffine, p, ref, warped,
                    Point{3, 5}, ChannelMask::y(), ChannelMask::y(), side);
  // g = [2, 6, 10, -1, -3, -5]
  EXPECT_EQ(side.gme_affine[0], 4);    // g0*g0
  EXPECT_EQ(side.gme_affine[1], 12);   // g0*g1
  EXPECT_EQ(side.gme_affine[2], 20);   // g0*g2
  EXPECT_EQ(side.gme_affine[3], -2);   // g0*g3
  EXPECT_EQ(side.gme_affine[21], 40);  // g0*r
  EXPECT_EQ(side.gme_affine[26], -100);  // g5*r
  EXPECT_EQ(side.gme_affine[27], 1);
}

TEST(SolveAffine, RecoversKnownSolution) {
  // Build sums from synthetic per-pixel data with a known delta.
  const std::array<double, 6> truth{0.5, 0.001, -0.002, -0.25, 0.003, 0.0005};
  std::array<i64, alib::kAffineAccumTerms> sums{};
  Rng rng(5);
  for (int n = 0; n < 4000; ++n) {
    const i64 gx = rng.uniform(-400, 400);
    const i64 gy = rng.uniform(-400, 400);
    const i64 x = rng.uniform(0, 351);
    const i64 y = rng.uniform(0, 287);
    const std::array<i64, 6> g{gx, gx * x, gx * y, gy, gy * x, gy * y};
    double r = 0.0;
    for (std::size_t i = 0; i < 6; ++i)
      r += static_cast<double>(g[i]) * truth[i] / 8.0;  // Sobel-gain scaled
    std::size_t k = 0;
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = i; j < 6; ++j) sums[k++] += g[i] * g[j];
    for (std::size_t i = 0; i < 6; ++i)
      sums[21 + i] += static_cast<i64>(std::llround(static_cast<double>(g[i]) * r));
    sums[27] += 1;
  }
  std::array<double, 6> delta{};
  ASSERT_TRUE(solve_affine_step(sums, delta));
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(delta[i], truth[i], 0.05 * std::abs(truth[i]) + 1e-3) << i;
}

TEST(SolveAffine, RejectsDegenerateSystems) {
  std::array<i64, alib::kAffineAccumTerms> sums{};
  std::array<double, 6> delta{};
  EXPECT_FALSE(solve_affine_step(sums, delta));  // no inliers
  sums[27] = 10'000;                             // inliers but zero matrix
  EXPECT_FALSE(solve_affine_step(sums, delta));
}

img::SyntheticSequence rotating_sequence(double rotate, double zoom) {
  img::SyntheticSequence::Params p;
  p.name = "affine-test";
  p.frame_size = Size{192, 160};
  p.frame_count = 2;
  p.seed = 31;
  p.script = img::MotionScript{0.5, 0.2, rotate, zoom, 0.0};
  return img::SyntheticSequence(p);
}

TEST(AffineEstimator, RecoversRotationTranslationalCannot) {
  const auto seq = rotating_sequence(0.01, 1.0);  // ~0.57 deg per frame
  alib::SoftwareBackend be;
  const Pyramid ref = build_pyramid(be, seq.frame(0), 3);
  const Pyramid cur = build_pyramid(be, seq.frame(1), 3);

  GmeEstimator trans(be);
  AffineGmeEstimator affine(be);
  const GmeResult rt = trans.estimate(ref, cur);
  const AffineGmeResult ra = affine.estimate(ref, cur);

  // Residual SAD under the affine model must clearly beat translational.
  EXPECT_LT(static_cast<double>(ra.final_sad),
            static_cast<double>(rt.final_sad) * 0.8)
      << "affine " << ra.final_sad << " vs translational " << rt.final_sad;
  // The recovered linear part reflects the rotation: a2 ≈ +sin(theta) for
  // a frame-centered rotation expressed around the origin... check the
  // antisymmetry and magnitude instead of exact values.
  EXPECT_GT(ra.motion.linear_deviation(), 1e-4);
  EXPECT_LT(std::abs(ra.motion.a2 + ra.motion.a4), 0.004);  // a2 ≈ -a4
}

TEST(AffineEstimator, RecoversZoom) {
  const auto seq = rotating_sequence(0.0, 1.01);  // 1% zoom per frame
  alib::SoftwareBackend be;
  const Pyramid ref = build_pyramid(be, seq.frame(0), 3);
  const Pyramid cur = build_pyramid(be, seq.frame(1), 3);
  AffineGmeEstimator affine(be);
  const AffineGmeResult ra = affine.estimate(ref, cur);
  // Scene zooms by ~1.01: the diagonal terms move together away from 1.
  EXPECT_NEAR(ra.motion.a1, ra.motion.a5, 0.004);
  EXPECT_GT(std::abs(ra.motion.a1 - 1.0), 0.002);
}

TEST(AffineEstimator, PureTranslationStaysTranslational) {
  const auto seq = rotating_sequence(0.0, 1.0);
  alib::SoftwareBackend be;
  const Pyramid ref = build_pyramid(be, seq.frame(0), 3);
  const Pyramid cur = build_pyramid(be, seq.frame(1), 3);
  AffineGmeEstimator affine(be);
  const AffineGmeResult ra = affine.estimate(ref, cur);
  EXPECT_NEAR(ra.motion.a0, -0.5, 0.35);
  EXPECT_NEAR(ra.motion.a3, -0.2, 0.35);
  EXPECT_LT(ra.motion.linear_deviation(), 0.01);
}

TEST(AffineEstimator, EngineBackendBitEqual) {
  // The affine op goes through the engine too (position comes from stage 1).
  const auto seq = rotating_sequence(0.005, 1.0);
  const img::Image ref = seq.frame(0);
  img::Image packed;
  {
    alib::SoftwareBackend sw;
    packed = sw.execute(alib::Call::make_intra(
                            alib::PixelOp::GradientPack,
                            alib::Neighborhood::con8(), ChannelMask::y(),
                            ChannelMask::alfa().with(Channel::Aux)),
                        seq.frame(1))
                 .output;
  }
  alib::OpParams p;
  p.threshold = 64;
  const alib::Call accum = alib::Call::make_inter(
      alib::PixelOp::GmeAccumAffine, ChannelMask::y(), ChannelMask::y(), p);
  alib::SoftwareBackend sw;
  core::EngineBackend hw({}, core::EngineMode::CycleAccurate);
  const alib::CallResult rs = sw.execute(accum, ref, &packed);
  const alib::CallResult rh = hw.execute(accum, ref, &packed);
  test::expect_images_equal(rs.output, rh.output);
  EXPECT_EQ(rs.side.gme_affine, rh.side.gme_affine);
  EXPECT_EQ(rs.side.sad, rh.side.sad);
}

}  // namespace
}  // namespace ae::gme
