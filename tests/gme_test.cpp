// GME component tests: warping, pyramids, the estimator's motion recovery
// against scripted ground truth, and the mosaic compositor.
#include <gtest/gtest.h>

#include <cmath>

#include "gme/estimator.hpp"
#include "gme/mosaic.hpp"
#include "gme/platform.hpp"
#include "gme/pyramid.hpp"
#include "image/compare.hpp"
#include "image/sequence.hpp"
#include "image/synth.hpp"

namespace ae::gme {
namespace {

img::SyntheticSequence make_sequence(double dx, double dy, int frames = 4,
                                     Size size = Size{160, 128}) {
  img::SyntheticSequence::Params p;
  p.name = "test";
  p.frame_size = size;
  p.frame_count = frames;
  p.seed = 42;
  p.script = img::MotionScript{dx, dy, 0.0, 1.0, 0.0};
  return img::SyntheticSequence(p);
}

TEST(Warp, IntegerShiftIsExact) {
  const img::Image src = img::make_test_frame(Size{32, 24}, 1);
  const img::Image warped = warp_translational(src, Translation{3.0, 2.0});
  // warped(x, y) == src(x+3, y+2) in the interior.
  for (i32 y = 0; y < 20; ++y)
    for (i32 x = 0; x < 28; ++x)
      ASSERT_EQ(warped.at(x, y).y, src.at(x + 3, y + 2).y);
}

TEST(Warp, ZeroShiftIsIdentityOnVideoChannels) {
  const img::Image src = img::make_test_frame(Size{16, 16}, 2);
  const img::Image warped = warp_translational(src, Translation{});
  EXPECT_EQ(img::count_differing(src, warped, ChannelMask::yuv()), 0);
}

TEST(Warp, HalfPixelInterpolates) {
  img::Image src(Size{4, 1});
  src.at(0, 0).y = 0;
  src.at(1, 0).y = 100;
  src.at(2, 0).y = 200;
  const img::Image warped = warp_translational(src, Translation{0.5, 0.0});
  EXPECT_EQ(warped.at(0, 0).y, 50);
  EXPECT_EQ(warped.at(1, 0).y, 150);
}

TEST(Warp, BorderReplicates) {
  img::Image src(Size{4, 4}, img::Pixel::gray(7));
  const img::Image warped = warp_translational(src, Translation{100.0, 0.0});
  EXPECT_EQ(warped.at(0, 0).y, 7);
}

TEST(Decimate, AveragesQuads) {
  img::Image src(Size{4, 2});
  src.at(0, 0).y = 10;
  src.at(1, 0).y = 20;
  src.at(0, 1).y = 30;
  src.at(1, 1).y = 40;
  const img::Image half = decimate2(src);
  EXPECT_EQ(half.size(), (Size{2, 1}));
  EXPECT_EQ(half.at(0, 0).y, 25);
}

TEST(Decimate, RejectsTooSmall) {
  EXPECT_THROW(decimate2(img::Image(Size{1, 4})), InvalidArgument);
}

TEST(PyramidTest, LevelsHalveAndCountCalls) {
  alib::SoftwareBackend be;
  const img::Image frame = img::make_test_frame(Size{128, 64}, 3);
  u64 hl = 0;
  const Pyramid pyr = build_pyramid(be, frame, 3, &hl);
  ASSERT_EQ(pyr.level_count(), 3);
  EXPECT_EQ(pyr.level(1).size(), (Size{64, 32}));
  EXPECT_EQ(pyr.level(2).size(), (Size{32, 16}));
  EXPECT_GT(hl, 0u);
}

TEST(PyramidTest, StopsBeforeDegenerateLevels) {
  alib::SoftwareBackend be;
  const img::Image frame = img::make_test_frame(Size{32, 20}, 3);
  const Pyramid pyr = build_pyramid(be, frame, 6);
  EXPECT_LT(pyr.level_count(), 6);
  EXPECT_GE(pyr.levels.back().height(), 8);
}

TEST(Estimator, RecoversScriptedTranslation) {
  const auto seq = make_sequence(2.0, -1.5);
  alib::SoftwareBackend be;
  GmeEstimator est(be);
  const Pyramid ref = build_pyramid(be, seq.frame(0), 3);
  const Pyramid cur = build_pyramid(be, seq.frame(1), 3);
  const GmeResult r = est.estimate(ref, cur);
  // Estimated motion should negate the camera pan (see table3.cpp).
  EXPECT_NEAR(r.motion.dx, -2.0, 0.35);
  EXPECT_NEAR(r.motion.dy, 1.5, 0.35);
  EXPECT_GT(r.iterations, 0);
}

TEST(Estimator, LargeMotionNeedsThePyramid) {
  const auto seq = make_sequence(9.0, 0.0);
  alib::SoftwareBackend be;
  GmeEstimator est(be);
  const Pyramid ref = build_pyramid(be, seq.frame(0), 3);
  const Pyramid cur = build_pyramid(be, seq.frame(1), 3);
  const GmeResult r = est.estimate(ref, cur);
  EXPECT_NEAR(r.motion.dx, -9.0, 1.0);
}

TEST(Estimator, WarmStartConverges) {
  const auto seq = make_sequence(3.0, 3.0);
  alib::SoftwareBackend be;
  GmeEstimator est(be);
  const Pyramid ref = build_pyramid(be, seq.frame(0), 3);
  const Pyramid cur = build_pyramid(be, seq.frame(1), 3);
  const GmeResult cold = est.estimate(ref, cur);
  const GmeResult warm = est.estimate(ref, cur, cold.motion);
  EXPECT_LE(std::abs(warm.motion.dx - cold.motion.dx), 0.5);
}

TEST(Estimator, StaticSceneGivesZeroMotion) {
  const auto seq = make_sequence(0.0, 0.0);
  alib::SoftwareBackend be;
  GmeEstimator est(be);
  const Pyramid ref = build_pyramid(be, seq.frame(0), 3);
  const Pyramid cur = build_pyramid(be, seq.frame(1), 3);
  const GmeResult r = est.estimate(ref, cur);
  EXPECT_LT(r.motion.magnitude(), 0.1);
}

TEST(Estimator, ParamsValidated) {
  alib::SoftwareBackend be;
  GmeParams bad;
  bad.pyramid_levels = 0;
  EXPECT_THROW(GmeEstimator(be, bad), InvalidArgument);
  bad = GmeParams{};
  bad.robust_threshold = 0;
  EXPECT_THROW(GmeEstimator(be, bad), InvalidArgument);
}

TEST(Estimator, MismatchedPyramidsRejected) {
  alib::SoftwareBackend be;
  GmeEstimator est(be);
  const Pyramid deep = build_pyramid(be, img::make_test_frame({64, 64}, 1), 3);
  const Pyramid flat = build_pyramid(be, img::make_test_frame({64, 64}, 1), 2);
  EXPECT_THROW(est.estimate(deep, flat), InvalidArgument);
}

TEST(MosaicTest, SingleFrameRoundTrip) {
  const img::Image f = img::make_test_frame(Size{32, 24}, 5);
  Mosaic m(Size{40, 30}, Point{4, 3});
  m.add_frame(f, Translation{});
  const img::Image out = m.render();
  EXPECT_EQ(out.at(4 + 10, 3 + 10).y, f.at(10, 10).y);
  EXPECT_EQ(out.at(0, 0).y, 128);  // uncovered = mid gray
  EXPECT_NEAR(m.coverage(), 32.0 * 24 / (40.0 * 30), 1e-9);
}

TEST(MosaicTest, OverlappingFramesAverage) {
  img::Image bright(Size{8, 8}, img::Pixel::gray(200));
  img::Image dark(Size{8, 8}, img::Pixel::gray(100));
  Mosaic m(Size{8, 8}, Point{0, 0});
  m.add_frame(bright, Translation{});
  m.add_frame(dark, Translation{});
  EXPECT_EQ(m.render().at(4, 4).y, 150);
  EXPECT_EQ(m.frames_added(), 2);
}

TEST(MosaicTest, PlacementShiftsContent) {
  img::Image f(Size{4, 4}, img::Pixel::gray(42));
  Mosaic m(Size{16, 16}, Point{0, 0});
  m.add_frame(f, Translation{10.0, 10.0});
  EXPECT_EQ(m.render().at(11, 11).y, 42);
  EXPECT_EQ(m.render().at(2, 2).y, 128);
}

TEST(MosaicTest, RequiredCanvasCoversSweep) {
  std::vector<Translation> motions{{0, 0}, {20, 0}, {40, -10}};
  Point origin{};
  const Size canvas = Mosaic::required_canvas(Size{32, 24}, motions, origin, 2);
  EXPECT_GE(canvas.width, 32 + 40 + 4);
  EXPECT_GE(canvas.height, 24 + 10 + 4);
  EXPECT_GE(origin.y, 10);
}

TEST(DualPlatform, CountsCallsByMode) {
  DualPlatformBackend be;
  const img::Image a = img::make_test_frame(Size{32, 32}, 1);
  const img::Image b = img::make_test_frame(Size{32, 32}, 2);
  be.execute(alib::Call::make_inter(alib::PixelOp::AbsDiff), a, &b);
  be.execute(alib::Call::make_intra(alib::PixelOp::MorphGradient,
                                    alib::Neighborhood::con8()),
             a);
  EXPECT_EQ(be.inter_calls(), 1);
  EXPECT_EQ(be.intra_calls(), 1);
  EXPECT_GT(be.software_platform_seconds(), 0.0);
  EXPECT_GT(be.engine_platform_seconds(), 0.0);
}

TEST(DualPlatform, HighLevelPricedOnBothCpus) {
  DualPlatformBackend be;
  const double sw0 = be.software_platform_seconds();
  const double hw0 = be.engine_platform_seconds();
  be.add_high_level(1'000'000'000);
  EXPECT_GT(be.software_platform_seconds(), sw0);
  EXPECT_GT(be.engine_platform_seconds(), hw0);
  // The P4 3 GHz host prices the same instructions cheaper than the PM.
  EXPECT_LT(be.engine_platform_seconds() - hw0,
            be.software_platform_seconds() - sw0);
}

TEST(MotionStrings, ToString) {
  EXPECT_NE(to_string(Translation{1.5, -2.0}).find("dx=1.5"),
            std::string::npos);
}

}  // namespace
}  // namespace ae::gme
