// Temporal object tracking tests: moving objects against static and
// moving cameras, track identity and camera-motion compensation.
#include <gtest/gtest.h>

#include <cmath>

#include "segmentation/tracker.hpp"
#include "image/synth.hpp"

namespace ae::seg {
namespace {

/// A scene frame: flat background, one bright disk at `disk`, optionally a
/// second dark square, the whole view shifted by `camera` pixels.
img::Image scene(Point disk, Point camera, bool second_object = false) {
  img::Image f(Size{96, 64});
  // Scene-anchored texture with structure at every pyramid scale (like
  // real footage — and like the Table 3 stand-ins): a fine-only texture
  // would vanish at the coarse levels and let the GME lock onto the
  // moving object instead of the background.
  for (i32 y = 0; y < f.height(); ++y)
    for (i32 x = 0; x < f.width(); ++x) {
      const double wx = x + camera.x;
      const double wy = y + camera.y;
      const double coarse = img::value_noise(wx, wy, 29, 2, 80.0);
      const double fine = img::value_noise(wx, wy, 17, 3, 14.0);
      f.ref(x, y) = img::Pixel::gray(img::clamp_u8(static_cast<i32>(
          40 + 120 * coarse + 50 * fine)));
    }
  img::draw_disk(f, disk - camera, 8, img::Pixel::gray(220));
  if (second_object)
    img::draw_rect(f, Rect{70 - camera.x, 44 - camera.y, 14, 12},
                   img::Pixel::gray(20));
  return f;
}

TrackerParams easy_params() {
  TrackerParams p;
  p.segmentation.luma_threshold = 14;
  p.segmentation.min_segment_pixels = 40;
  p.min_object_pixels = 60;
  p.gme.robust_passes = 1;
  return p;
}

const Track* find_track_of_size(const ObjectTracker& tracker, i64 min_px,
                                i64 max_px) {
  for (const Track& t : tracker.tracks()) {
    const i64 px = t.observations.front().pixels;
    if (px >= min_px && px <= max_px) return &t;
  }
  return nullptr;
}

TEST(Tracker, FollowsAMovingObjectStaticCamera) {
  alib::SoftwareBackend be;
  ObjectTracker tracker(be, easy_params());
  for (int t = 0; t < 5; ++t)
    tracker.feed(scene({24 + 6 * t, 30}, {0, 0}));
  // One track is the disk (~200 px): present in all 5 frames, moving.
  const Track* disk = find_track_of_size(tracker, 120, 350);
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->length(), 5);
  EXPECT_NEAR(disk->mean_scene_speed(), 6.0, 1.0);
  // Scene content is static: other long tracks move far slower than the
  // disk.  (Their centroids still jitter a little: the disk carves through
  // neighboring segments and per-frame re-segmentation reshapes them.)
  int static_tracks = 0;
  for (const Track& track : tracker.tracks()) {
    if (track.id == disk->id || track.length() < 4) continue;
    EXPECT_LT(track.mean_scene_speed(), disk->mean_scene_speed() / 1.7)
        << "track " << track.id;
    ++static_tracks;
  }
  EXPECT_GE(static_tracks, 1);
  EXPECT_NEAR(tracker.camera_motion().magnitude(), 0.0, 1.5);
}

TEST(Tracker, CompensatesCameraMotion) {
  // The object is static in the scene while the camera pans: without
  // compensation its frame position moves 5 px/frame; the tracker must
  // report it (nearly) static.
  alib::SoftwareBackend be;
  ObjectTracker tracker(be, easy_params());
  for (int t = 0; t < 5; ++t)
    tracker.feed(scene({48, 30}, {5 * t, 0}));
  const Track* disk = find_track_of_size(tracker, 120, 350);
  ASSERT_NE(disk, nullptr);
  EXPECT_EQ(disk->length(), 5);
  EXPECT_LT(disk->mean_scene_speed(), 1.2);
  EXPECT_NEAR(tracker.camera_motion().magnitude(), 4.0 * 5.0, 3.0);
}

TEST(Tracker, KeepsTwoObjectsApart) {
  alib::SoftwareBackend be;
  ObjectTracker tracker(be, easy_params());
  for (int t = 0; t < 4; ++t)
    tracker.feed(scene({20 + 4 * t, 20}, {0, 0}, true));
  // Disk (~200 px) and square (~168 px) stay separate tracks.
  int full_length_small_tracks = 0;
  for (const Track& track : tracker.tracks())
    if (track.length() == 4 && track.observations.front().pixels < 1000)
      ++full_length_small_tracks;
  EXPECT_GE(full_length_small_tracks, 2);
}

TEST(Tracker, ObjectLeavingEndsItsTrack) {
  alib::SoftwareBackend be;
  TrackerParams params = easy_params();
  params.max_match_distance = 10.0;
  ObjectTracker tracker(be, params);
  // Disk marches off the right edge.
  for (int t = 0; t < 6; ++t)
    tracker.feed(scene({70 + 8 * t, 30}, {0, 0}));
  const Track* disk = find_track_of_size(tracker, 100, 350);
  ASSERT_NE(disk, nullptr);
  EXPECT_LT(disk->last_frame(), 5);  // gone before the end
  // It is no longer among the active tracks.
  for (const Track* active : tracker.active_tracks())
    EXPECT_NE(active->id, disk->id);
}

TEST(Tracker, CountsAddressLibWork) {
  alib::SoftwareBackend be;
  ObjectTracker tracker(be, easy_params());
  tracker.feed(scene({30, 30}, {0, 0}));
  const i64 one_frame = tracker.addresslib_calls();
  EXPECT_GT(one_frame, 3);
  tracker.feed(scene({34, 30}, {0, 0}));
  EXPECT_GT(tracker.addresslib_calls(), one_frame + 4);  // + GME calls
}

TEST(Tracker, ParamsValidated) {
  alib::SoftwareBackend be;
  TrackerParams bad;
  bad.max_match_distance = 0.0;
  EXPECT_THROW(ObjectTracker(be, bad), InvalidArgument);
}

}  // namespace
}  // namespace ae::seg
