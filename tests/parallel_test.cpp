// Tests for the row-banding worker pool (common/parallel.hpp): exact band
// coverage, degenerate inputs, exception propagation and concurrent jobs on
// one pool — the properties the kernel backend's determinism rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace ae {
namespace {

TEST(ParallelRows, BandsCoverEveryRowExactlyOnce) {
  par::ThreadPool pool(4);
  for (const i32 rows : {1, 5, 16, 37, 100}) {
    for (const i32 grain : {1, 3, 16, 64}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(rows));
      for (auto& h : hits) h = 0;
      pool.parallel_rows(rows, grain, [&](i32 y0, i32 y1) {
        ASSERT_LT(y0, y1);
        ASSERT_LE(y1 - y0, grain);
        for (i32 y = y0; y < y1; ++y)
          hits[static_cast<std::size_t>(y)].fetch_add(1);
      });
      for (i32 y = 0; y < rows; ++y)
        EXPECT_EQ(hits[static_cast<std::size_t>(y)].load(), 1)
            << "rows=" << rows << " grain=" << grain << " row " << y;
    }
  }
}

TEST(ParallelRows, BandPartitionIsIndependentOfThreadCount) {
  // The banding must be a pure function of (rows, grain): collect the band
  // boundaries under different pool sizes and compare.
  auto bands_of = [](par::ThreadPool& pool, i32 rows, i32 grain) {
    std::mutex mu;
    std::set<std::pair<i32, i32>> bands;
    pool.parallel_rows(rows, grain, [&](i32 y0, i32 y1) {
      std::lock_guard<std::mutex> lk(mu);
      bands.insert({y0, y1});
    });
    return bands;
  };
  par::ThreadPool serial(1);
  par::ThreadPool wide(8);
  EXPECT_EQ(bands_of(serial, 37, 5), bands_of(wide, 37, 5));
  EXPECT_EQ(bands_of(serial, 64, 16), bands_of(wide, 64, 16));
}

TEST(ParallelRows, ZeroRowsNeverInvokesTheBody) {
  par::ThreadPool pool(4);
  bool called = false;
  pool.parallel_rows(0, 16, [&](i32, i32) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelRows, GrainLargerThanRowsIsOneBand) {
  par::ThreadPool pool(4);
  int calls = 0;
  pool.parallel_rows(7, 100, [&](i32 y0, i32 y1) {
    ++calls;
    EXPECT_EQ(y0, 0);
    EXPECT_EQ(y1, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelRows, SerialPoolDegradesToPlainLoop) {
  par::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<i32> order;
  pool.parallel_rows(10, 4, [&](i32 y0, i32) { order.push_back(y0); });
  EXPECT_EQ(order, (std::vector<i32>{0, 4, 8}));
}

TEST(ParallelRows, ExceptionPropagatesAfterAllBandsFinish) {
  par::ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_rows(40, 4,
                         [&](i32 y0, i32) {
                           if (y0 == 20) throw std::runtime_error("band 20");
                           completed.fetch_add(1);
                         }),
      std::runtime_error);
  // Every band other than the throwing one ran to completion first.
  EXPECT_EQ(completed.load(), 9);
}

TEST(ParallelRows, ConcurrentJobsShareOnePool) {
  par::ThreadPool pool(4);
  constexpr int kJobs = 4;
  constexpr i32 kRows = 64;
  std::vector<std::atomic<i32>> sums(kJobs);
  for (auto& s : sums) s = 0;
  std::vector<std::thread> callers;
  for (int j = 0; j < kJobs; ++j) {
    callers.emplace_back([&pool, &sums, j] {
      pool.parallel_rows(kRows, 3, [&sums, j](i32 y0, i32 y1) {
        for (i32 y = y0; y < y1; ++y) sums[static_cast<std::size_t>(j)] += y;
      });
    });
  }
  for (auto& t : callers) t.join();
  for (int j = 0; j < kJobs; ++j)
    EXPECT_EQ(sums[static_cast<std::size_t>(j)].load(),
              kRows * (kRows - 1) / 2);
}

}  // namespace
}  // namespace ae
