// End-to-end Table 3 shape tests on shortened sequences: the FPGA platform
// must win by roughly the paper's factor, call counts must match the
// paper's per-frame mix, and the estimate must track the scripted camera.
#include <gtest/gtest.h>

#include "gme/table3.hpp"

namespace ae::gme {
namespace {

SequenceExperiment run_short(img::PaperSequence which, int frames) {
  SequenceRunOptions opt;
  opt.max_frames = frames;
  opt.build_mosaic = true;
  const img::SyntheticSequence seq(img::paper_sequence_params(which));
  return run_sequence_experiment(seq, opt);
}

TEST(Table3, SpeedupIsAboutFive) {
  // "our prototype achieves an average speedup factor of 5".
  const SequenceExperiment e = run_short(img::PaperSequence::Singapore, 10);
  EXPECT_GT(e.speedup(), 3.5);
  EXPECT_LT(e.speedup(), 7.0);
}

TEST(Table3, CallMixMatchesPaperPerFrame) {
  // Paper Singapore: 4542 intra / 3173 inter over the sequence — about 30
  // intra and 21 inter calls per frame, intra/inter ratio ~1.4.
  const SequenceExperiment e = run_short(img::PaperSequence::Singapore, 10);
  const double intra_per_frame =
      static_cast<double>(e.intra_calls) / (e.frames - 1);
  const double inter_per_frame =
      static_cast<double>(e.inter_calls) / (e.frames - 1);
  EXPECT_GT(intra_per_frame, 18.0);
  EXPECT_LT(intra_per_frame, 45.0);
  EXPECT_GT(inter_per_frame, 12.0);
  EXPECT_LT(inter_per_frame, 32.0);
  const double ratio = intra_per_frame / inter_per_frame;
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.9);
}

TEST(Table3, MotionTrackingStaysTight) {
  const SequenceExperiment e = run_short(img::PaperSequence::Singapore, 10);
  EXPECT_LT(e.mean_motion_error_px, 1.0);
}

TEST(Table3, MosaicGrowsBeyondOneFrame) {
  const SequenceExperiment e = run_short(img::PaperSequence::Movie, 10);
  EXPECT_FALSE(e.mosaic.empty());
  EXPECT_GT(e.mosaic.width(), img::formats::kCif.width);
  EXPECT_GT(e.mosaic_coverage, 0.5);
}

TEST(Table3, BothPlatformsScaleWithFrames) {
  const SequenceExperiment short_run =
      run_short(img::PaperSequence::Dome, 6);
  const SequenceExperiment long_run =
      run_short(img::PaperSequence::Dome, 11);
  EXPECT_GT(long_run.pm_seconds, short_run.pm_seconds);
  EXPECT_GT(long_run.fpga_seconds, short_run.fpga_seconds);
  EXPECT_GT(long_run.intra_calls, short_run.intra_calls);
}

TEST(Table3, RequiresTwoFrames) {
  SequenceRunOptions opt;
  opt.max_frames = 1;
  const img::SyntheticSequence seq(
      img::paper_sequence_params(img::PaperSequence::Movie));
  EXPECT_THROW(run_sequence_experiment(seq, opt), InvalidArgument);
}

TEST(Table3, PmTimePerFrameInPaperBallpark) {
  // Paper: 1.8-2.4 s per frame on the PM.  Allow a generous band — the
  // reproduction models, not measures, the 2005 platform.
  const SequenceExperiment e = run_short(img::PaperSequence::Singapore, 8);
  const double per_frame = e.pm_seconds / (e.frames - 1);
  EXPECT_GT(per_frame, 0.8);
  EXPECT_LT(per_frame, 4.0);
}

TEST(Table3, FpgaTimeIsTransferDominated) {
  // The engine's modeled seconds per frame must sit near the PCI floor:
  // ~50 calls x (transfers + per-call overhead) ≈ 0.2-0.6 s.
  const SequenceExperiment e = run_short(img::PaperSequence::Singapore, 8);
  const double per_frame = e.fpga_seconds / (e.frames - 1);
  EXPECT_GT(per_frame, 0.15);
  EXPECT_LT(per_frame, 0.8);
}

}  // namespace
}  // namespace ae::gme
