// ZBT memory model tests: bank-pair layout, port arbitration, the
// parallel-transaction accounting and the strip region mapping.
#include <gtest/gtest.h>

#include "core/zbt.hpp"

namespace ae::core {
namespace {

EngineConfig cfg() { return EngineConfig{}; }

TEST(Zbt, InputPixelRoundTripThroughBankPair) {
  ZbtMemory zbt(cfg(), Size{32, 16});
  img::Pixel p;
  p.y = 1;
  p.u = 2;
  p.v = 3;
  p.alfa = 400;
  p.aux = 500;
  zbt.begin_cycle();
  zbt.write_input_word(ZbtRegion::InputA, 7, 0, p.lower_word());
  zbt.begin_cycle();
  zbt.write_input_word(ZbtRegion::InputA, 7, 1, p.upper_word());
  zbt.begin_cycle();
  EXPECT_EQ(zbt.read_input_pixel(ZbtRegion::InputA, 7), p);
}

TEST(Zbt, PairReadCountsOneTransaction) {
  ZbtMemory zbt(cfg(), Size{32, 16});
  zbt.begin_cycle();
  zbt.read_input_pixel(ZbtRegion::InputA, 0);
  EXPECT_EQ(zbt.processing_read_transactions(), 1u);
  EXPECT_EQ(zbt.word_accesses(), 2u);
}

TEST(Zbt, InterPairReadIsStillOneTransaction) {
  ZbtMemory zbt(cfg(), Size{32, 16});
  zbt.begin_cycle();
  img::Pixel a;
  img::Pixel b;
  zbt.read_input_pixel_pair(3, a, b);
  EXPECT_EQ(zbt.processing_read_transactions(), 1u);
  EXPECT_EQ(zbt.word_accesses(), 4u);  // four banks touched in parallel
}

TEST(Zbt, ResultWordsLiveSequentiallyInOneBank) {
  ZbtMemory zbt(cfg(), Size{32, 16});
  img::Pixel p;
  p.y = 77;
  p.alfa = 888;
  zbt.begin_cycle();
  zbt.write_result_word(5, 0, p.lower_word());
  zbt.begin_cycle();
  zbt.write_result_word(5, 1, p.upper_word());
  zbt.begin_cycle();
  const u32 lo = zbt.read_result_word(5, 0);
  zbt.begin_cycle();
  const u32 hi = zbt.read_result_word(5, 1);
  EXPECT_EQ(img::Pixel::from_words(lo, hi), p);
  // One write transaction per result pixel (two word cycles).
  EXPECT_EQ(zbt.processing_write_transactions(), 1u);
}

TEST(Zbt, ResultSplitsAcrossBlockBanks) {
  // First-half addresses land in bank 4, second half in bank 5 — writing
  // both in the same cycle must be legal (different ports).
  ZbtMemory zbt(cfg(), Size{32, 16});
  const i64 pixels = 32 * 16;
  zbt.begin_cycle();
  zbt.write_result_word(0, 0, 1);
  EXPECT_NO_THROW(zbt.write_result_word(pixels - 1, 0, 2));
}

TEST(Zbt, PortDoubleBookingCaught) {
  ZbtMemory zbt(cfg(), Size{32, 16});
  zbt.begin_cycle();
  zbt.read_input_pixel(ZbtRegion::InputA, 0);
  EXPECT_THROW(zbt.read_input_pixel(ZbtRegion::InputA, 1),
               InvariantViolation);
  zbt.begin_cycle();  // next cycle frees the port
  EXPECT_NO_THROW(zbt.read_input_pixel(ZbtRegion::InputA, 1));
}

TEST(Zbt, PairFreeReflectsClaims) {
  ZbtMemory zbt(cfg(), Size{32, 16});
  zbt.begin_cycle();
  EXPECT_TRUE(zbt.pair_free(ZbtRegion::InputA));
  zbt.write_input_word(ZbtRegion::InputA, 0, 0, 1);
  EXPECT_FALSE(zbt.pair_free(ZbtRegion::InputA));
  EXPECT_TRUE(zbt.pair_free(ZbtRegion::InputB));
  EXPECT_TRUE(zbt.pair_free(ZbtRegion::Result));
}

TEST(Zbt, DmaTrafficCountedSeparately) {
  ZbtMemory zbt(cfg(), Size{32, 16});
  zbt.begin_cycle();
  zbt.write_input_word(ZbtRegion::InputA, 0, 0, 1);
  EXPECT_EQ(zbt.dma_word_accesses(), 1u);
  EXPECT_EQ(zbt.processing_read_transactions(), 0u);
  EXPECT_EQ(zbt.processing_write_transactions(), 0u);
}

TEST(Zbt, FrameTooLargeRejected) {
  EngineConfig small = cfg();
  small.zbt_bank_bytes = 1024;
  EXPECT_THROW(ZbtMemory(small, Size{352, 288}), InvalidArgument);
}

TEST(Zbt, InputRegionAlternatesForIntra) {
  // Intra (one frame): strips alternate pairs.  Inter: fixed per frame.
  EXPECT_EQ(input_region(0, 1, 0, 16), ZbtRegion::InputA);
  EXPECT_EQ(input_region(0, 1, 16, 16), ZbtRegion::InputB);
  EXPECT_EQ(input_region(0, 1, 32, 16), ZbtRegion::InputA);
  EXPECT_EQ(input_region(0, 2, 100, 16), ZbtRegion::InputA);
  EXPECT_EQ(input_region(1, 2, 100, 16), ZbtRegion::InputB);
}

TEST(Zbt, BankBandwidthMatchesPaper) {
  // "a 264 Mbytes/s rate can be achieved between every one of the 6 ZBT RAM
  // banks and the FPGA" at 66 MHz x 32 bit.
  EXPECT_NEAR(cfg().zbt_bank_mbytes_per_s(), 264.0, 0.1);
}

}  // namespace
}  // namespace ae::core
