// Unit tests for the image substrate: the 64-bit pixel layout, the image
// container, synthesis, comparison and file I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "image/compare.hpp"
#include "image/image.hpp"
#include "image/io.hpp"
#include "image/synth.hpp"

namespace ae::img {
namespace {

TEST(Pixel, WordPackingLayout) {
  Pixel p;
  p.y = 0x12;
  p.u = 0x34;
  p.v = 0x56;
  p.alfa = 0xABCD;
  p.aux = 0xEF01;
  EXPECT_EQ(p.lower_word(), 0x00563412u);
  EXPECT_EQ(p.upper_word(), 0xEF01ABCDu);
}

class PixelRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(PixelRoundTrip, FromWordsInvertsToWords) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Pixel p;
    p.y = static_cast<u8>(rng.next_u32());
    p.u = static_cast<u8>(rng.next_u32());
    p.v = static_cast<u8>(rng.next_u32());
    p.alfa = static_cast<u16>(rng.next_u32());
    p.aux = static_cast<u16>(rng.next_u32());
    EXPECT_EQ(Pixel::from_words(p.lower_word(), p.upper_word()), p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PixelRoundTrip, ::testing::Values(1, 2, 3));

TEST(Pixel, GetSetCoversAllChannels) {
  Pixel p;
  for (int c = 0; c < kChannelCount; ++c) {
    const auto ch = static_cast<Channel>(c);
    p.set(ch, 200);
    EXPECT_EQ(p.get(ch), 200);
  }
}

TEST(Pixel, ClampHelpers) {
  EXPECT_EQ(clamp_u8(-5), 0);
  EXPECT_EQ(clamp_u8(300), 255);
  EXPECT_EQ(clamp_u8(128), 128);
  EXPECT_EQ(clamp_u16(-1), 0);
  EXPECT_EQ(clamp_u16(70000), 0xFFFF);
  EXPECT_EQ(clamp_channel(Channel::Y, 1000), 255);
  EXPECT_EQ(clamp_channel(Channel::Alfa, 1000), 1000);
}

TEST(Image, ConstructionAndFill) {
  Image img(Size{8, 4}, Pixel::gray(10));
  EXPECT_EQ(img.width(), 8);
  EXPECT_EQ(img.height(), 4);
  EXPECT_EQ(img.pixel_count(), 32);
  EXPECT_EQ(img.at(7, 3).y, 10);
  img.fill(Pixel::gray(99));
  EXPECT_EQ(img.at(0, 0).y, 99);
}

TEST(Image, AtThrowsOutOfBounds) {
  Image img(4, 4);
  EXPECT_THROW(img.at(4, 0), InvalidArgument);
  EXPECT_THROW(img.at(0, -1), InvalidArgument);
  EXPECT_THROW(img.at(-1, 2), InvalidArgument);
}

TEST(Image, NegativeDimensionsRejected) {
  EXPECT_THROW(Image(-1, 4), InvalidArgument);
}

TEST(Image, ClampedReplicatesBorder) {
  Image img(3, 3);
  img.at(0, 0).y = 11;
  img.at(2, 2).y = 22;
  EXPECT_EQ(img.clamped(-5, -5).y, 11);
  EXPECT_EQ(img.clamped(10, 10).y, 22);
  EXPECT_EQ(img.clamped(1, 1).y, img.at(1, 1).y);
}

TEST(Image, FillChannelLeavesOthers) {
  Image img(2, 2, Pixel::gray(50));
  img.fill_channel(Channel::Alfa, 7);
  EXPECT_EQ(img.at(1, 1).alfa, 7);
  EXPECT_EQ(img.at(1, 1).y, 50);
}

TEST(Image, CropCopiesRegion) {
  Image img(6, 6);
  img.at(2, 3).y = 123;
  const Image c = img.crop(Rect{2, 3, 2, 2});
  EXPECT_EQ(c.size(), (Size{2, 2}));
  EXPECT_EQ(c.at(0, 0).y, 123);
}

TEST(Image, CropRejectsOutside) {
  Image img(4, 4);
  EXPECT_THROW(img.crop(Rect{2, 2, 4, 4}), InvalidArgument);
}

TEST(Image, ZbtBytesMatchesPaperFigures) {
  // "QCIF (176x144, approx. 200 kBytes) or CIF (352x288, approx. 800 kB)".
  EXPECT_EQ(zbt_bytes(formats::kQcif), 176 * 144 * 8);
  EXPECT_NEAR(static_cast<double>(zbt_bytes(formats::kQcif)) / 1024.0, 198.0,
              1.0);
  EXPECT_NEAR(static_cast<double>(zbt_bytes(formats::kCif)) / 1024.0, 792.0,
              1.0);
}

TEST(Synth, RampSpansFullRange) {
  Image img(64, 8);
  draw_ramp(img);
  EXPECT_EQ(img.at(0, 0).y, 0);
  EXPECT_EQ(img.at(63, 7).y, 255);
}

TEST(Synth, CheckerboardAlternates) {
  Image img(8, 8);
  draw_checkerboard(img, 2, Pixel::gray(0), Pixel::gray(255));
  EXPECT_EQ(img.at(0, 0).y, 0);
  EXPECT_EQ(img.at(2, 0).y, 255);
  EXPECT_EQ(img.at(0, 2).y, 255);
  EXPECT_EQ(img.at(2, 2).y, 0);
}

TEST(Synth, DiskStaysInRadius) {
  Image img(21, 21, Pixel::gray(0));
  draw_disk(img, {10, 10}, 5, Pixel::gray(255));
  EXPECT_EQ(img.at(10, 10).y, 255);
  EXPECT_EQ(img.at(10, 15).y, 255);
  EXPECT_EQ(img.at(10, 16).y, 0);
  EXPECT_EQ(img.at(16, 16).y, 0);
}

TEST(Synth, RectClipsToImage) {
  Image img(4, 4, Pixel::gray(0));
  draw_rect(img, Rect{2, 2, 10, 10}, Pixel::gray(200));
  EXPECT_EQ(img.at(3, 3).y, 200);
  EXPECT_EQ(img.at(1, 1).y, 0);
}

TEST(Synth, TestFrameDeterministicPerSeed) {
  const Image a = make_test_frame(Size{32, 32}, 5);
  const Image b = make_test_frame(Size{32, 32}, 5);
  const Image c = make_test_frame(Size{32, 32}, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(count_differing(a, c, ChannelMask::y()), 0);
}

TEST(Synth, ValueNoiseIsDeterministicAndBounded) {
  for (int i = 0; i < 50; ++i) {
    const double x = i * 1.7;
    const double v = value_noise(x, x * 0.3, 9, 3, 16.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_DOUBLE_EQ(v, value_noise(x, x * 0.3, 9, 3, 16.0));
  }
}

TEST(Synth, ValueNoiseIsSmooth) {
  // Neighboring samples differ by far less than the full range.
  double max_step = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double a = value_noise(i * 0.5, 3.0, 7, 2, 32.0);
    const double b = value_noise(i * 0.5 + 0.5, 3.0, 7, 2, 32.0);
    max_step = std::max(max_step, std::abs(a - b));
  }
  EXPECT_LT(max_step, 0.2);
}

TEST(Compare, MetricsOnKnownImages) {
  Image a(4, 4, Pixel::gray(100));
  Image b(4, 4, Pixel::gray(110));
  EXPECT_EQ(sad_y(a, b), 16u * 10u);
  EXPECT_DOUBLE_EQ(mse_y(a, b), 100.0);
  EXPECT_NEAR(psnr_y(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-9);
  EXPECT_TRUE(std::isinf(psnr_y(a, a)));
}

TEST(Compare, CountDifferingRespectsMask) {
  Image a(2, 2);
  Image b = a;
  b.at(0, 0).alfa = 5;
  EXPECT_EQ(count_differing(a, b, ChannelMask::y()), 0);
  EXPECT_EQ(count_differing(a, b, ChannelMask::all()), 1);
}

TEST(Compare, FirstDifferenceDescribesPixel) {
  Image a(2, 2);
  Image b = a;
  b.at(1, 0).y = 9;
  const std::string d = first_difference(a, b, ChannelMask::all());
  EXPECT_NE(d.find("(1,0)"), std::string::npos);
  EXPECT_NE(d.find("Y"), std::string::npos);
  EXPECT_TRUE(first_difference(a, a, ChannelMask::all()).empty());
}

TEST(Io, PgmRoundTripY) {
  const Image src = make_test_frame(Size{24, 16}, 3);
  std::stringstream ss;
  write_pgm(src, ss);
  const Image back = read_pgm(ss);
  EXPECT_EQ(back.size(), src.size());
  EXPECT_EQ(count_differing(src, back, ChannelMask::y()), 0);
}

TEST(Io, AeiRoundTripAllChannels) {
  const Image src = make_test_frame(Size{24, 16}, 4);
  std::stringstream ss;
  write_aei(src, ss);
  const Image back = read_aei(ss);
  EXPECT_EQ(back, src);
}

TEST(Io, RejectsMalformedStreams) {
  std::stringstream not_pgm("JUNKDATA");
  EXPECT_THROW(read_pgm(not_pgm), IoError);
  std::stringstream not_aei("XXXX\x01\x02");
  EXPECT_THROW(read_aei(not_aei), IoError);
  std::stringstream truncated("P5\n4 4\n255\nab");
  EXPECT_THROW(read_pgm(truncated), IoError);
}

TEST(Io, PgmHonorsComments) {
  std::stringstream ss;
  ss << "P5\n# a comment line\n2 1\n255\n";
  ss.put(static_cast<char>(42));
  ss.put(static_cast<char>(43));
  const Image img = read_pgm(ss);
  EXPECT_EQ(img.at(0, 0).y, 42);
  EXPECT_EQ(img.at(1, 0).y, 43);
}

TEST(Io, RgbConversionNeutralChromaIsGray) {
  const Rgb rgb = to_rgb(Pixel::gray(100));
  EXPECT_EQ(rgb.r, 100);
  EXPECT_EQ(rgb.g, 100);
  EXPECT_EQ(rgb.b, 100);
}

TEST(Io, PpmEmitsHeaderAndPayload) {
  Image img(2, 1, Pixel::gray(10));
  std::stringstream ss;
  write_ppm(img, ss);
  const std::string s = ss.str();
  EXPECT_EQ(s.rfind("P6\n2 1\n255\n", 0), 0u);
  EXPECT_EQ(s.size(), std::string("P6\n2 1\n255\n").size() + 6);
}

TEST(Io, FileRoundTrip) {
  const Image src = make_test_frame(Size{16, 16}, 8);
  const std::string path = ::testing::TempDir() + "/ae_io_test.aei";
  write_aei(src, path);
  EXPECT_EQ(read_aei(path), src);
  EXPECT_THROW(read_aei(::testing::TempDir() + "/does_not_exist.aei"),
               IoError);
}

}  // namespace
}  // namespace ae::img
