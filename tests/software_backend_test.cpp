// Software backend tests: functional behaviour plus the consistency of its
// accounting with the analytic access/cost models.
#include <gtest/gtest.h>

#include "addresslib/access_model.hpp"
#include "addresslib/functional.hpp"
#include "addresslib/software_backend.hpp"
#include "image/compare.hpp"
#include "image/synth.hpp"

namespace ae::alib {
namespace {

img::Image frame(u64 seed = 1) {
  return img::make_test_frame(Size{32, 24}, seed);
}

TEST(SoftwareBackend, NameEncodesClock) {
  SoftwareBackend be;
  EXPECT_EQ(be.name(), "software/PM-1.6GHz");
  SoftwareCostModel fast;
  fast.clock_hz = 3.0e9;
  EXPECT_EQ(SoftwareBackend(fast).name(), "software/PM-3GHz");
}

TEST(SoftwareBackend, LoadsMatchAnalyticModel) {
  SoftwareBackend be;
  const img::Image a = frame();
  for (const Call& c :
       {Call::make_intra(PixelOp::Copy, Neighborhood::con0()),
        Call::make_intra(PixelOp::MorphGradient, Neighborhood::con8()),
        Call::make_intra(PixelOp::Erode, Neighborhood::con4(),
                         ChannelMask::yuv(), ChannelMask::yuv())}) {
    const CallResult r = be.execute(c, a);
    const AccessCounts model = software_access_model(c, a.pixel_count());
    EXPECT_EQ(r.stats.loads, model.loads) << c.describe();
    EXPECT_EQ(r.stats.stores, model.stores) << c.describe();
  }
}

TEST(SoftwareBackend, InterLoadsMatchModel) {
  SoftwareBackend be;
  const img::Image a = frame(1);
  const img::Image b = frame(2);
  const Call c = Call::make_inter(PixelOp::AbsDiff);
  const CallResult r = be.execute(c, a, &b);
  EXPECT_EQ(r.stats.loads, static_cast<u64>(2 * a.pixel_count()));
  EXPECT_EQ(r.stats.stores, static_cast<u64>(a.pixel_count()));
}

TEST(SoftwareBackend, ProfileScalesWithPixels) {
  SoftwareBackend be;
  const Call c = Call::make_intra(PixelOp::MorphGradient,
                                  Neighborhood::con8());
  const CallResult small = be.execute(c, img::make_test_frame({16, 16}, 1));
  const CallResult large = be.execute(c, img::make_test_frame({32, 32}, 1));
  // 4x the pixels -> ~4x the instructions (minus fixed call overhead).
  const double ratio =
      static_cast<double>(large.stats.profile.total() -
                          static_cast<u64>(be.cost_model().call_overhead_instr)) /
      static_cast<double>(small.stats.profile.total() -
                          static_cast<u64>(be.cost_model().call_overhead_instr));
  EXPECT_NEAR(ratio, 4.0, 0.01);
}

TEST(SoftwareBackend, ModelSecondsPositiveAndClockScaled) {
  const img::Image a = frame();
  const Call c = Call::make_intra(PixelOp::MorphGradient,
                                  Neighborhood::con8());
  SoftwareBackend slow;  // 1.6 GHz
  SoftwareCostModel fast_model;
  fast_model.clock_hz = 3.2e9;
  SoftwareBackend fast(fast_model);
  const double t_slow = slow.execute(c, a).stats.model_seconds;
  const double t_fast = fast.execute(c, a).stats.model_seconds;
  EXPECT_GT(t_slow, 0.0);
  EXPECT_NEAR(t_slow / t_fast, 2.0, 1e-9);
}

TEST(SoftwareBackend, AddressCalculationDominatesProfile) {
  // The paper's core observation, visible in any neighborhood call.
  SoftwareBackend be;
  const CallResult r = be.execute(
      Call::make_intra(PixelOp::MorphGradient, Neighborhood::con8()),
      frame());
  const InstructionProfile& p = r.stats.profile;
  EXPECT_GT(p.address_calc, p.pixel_op);
  EXPECT_GT(p.address_calc, p.control);
  EXPECT_GT(p.address_calc, p.memory);
  EXPECT_GT(static_cast<double>(p.address_calc) /
                static_cast<double>(p.total()),
            0.5);
}

TEST(SoftwareBackend, SegmentCountsTableTraffic) {
  SegmentSpec spec;
  spec.seeds = {{5, 5}};
  spec.luma_threshold = 255;  // grows over everything
  const Call c = Call::make_segment(PixelOp::Copy, Neighborhood::con0(), spec,
                                    ChannelMask::y(),
                                    ChannelMask::y().with(Channel::Alfa));
  SoftwareBackend be;
  const img::Image a = frame();
  const CallResult r = be.execute(c, a);
  EXPECT_EQ(r.stats.pixels, a.pixel_count());  // full coverage
  EXPECT_GT(r.stats.table_writes, 0u);
  EXPECT_EQ(r.segments.size(), 1u);
  EXPECT_EQ(r.segments[0].pixel_count, a.pixel_count());
}

TEST(SoftwareBackend, MatchesPureFunctionalExecution) {
  SoftwareBackend be;
  const img::Image a = frame(3);
  const img::Image b = frame(4);
  const Call c = Call::make_inter(PixelOp::Max);
  const CallResult viaBackend = be.execute(c, a, &b);
  const CallResult viaFunctional = execute_functional(c, a, &b);
  EXPECT_EQ(viaBackend.output, viaFunctional.output);
}

TEST(SoftwareBackend, HistogramSideResultComplete) {
  SoftwareBackend be;
  const img::Image a = frame();
  const CallResult r = be.execute(
      Call::make_intra(PixelOp::Histogram, Neighborhood::con0()), a);
  u64 total = 0;
  for (const u64 bin : r.side.histogram) total += bin;
  EXPECT_EQ(total, static_cast<u64>(a.pixel_count()));  // conservation
}

TEST(CostModel, CyclesIncludeMemoryStalls) {
  SoftwareCostModel m;
  InstructionProfile p;
  p.control = 100;
  p.memory = 10;
  const double with_stalls = m.cycles(p);
  m.memory_stall_cycles = 0;
  EXPECT_GT(with_stalls, m.cycles(p));
}

}  // namespace
}  // namespace ae::alib
