// Engine timing and architecture-behaviour tests:
//  * the analytic model tracks the cycle simulator across configurations,
//  * normal calls are bus-bound (the paper's central performance claim),
//  * strict inter sequencing exposes ~12.5% non-transfer time (section 4.1),
//  * Table 2's hardware transaction counts fall out of the simulated
//    dataflow, on CIF, exactly.
#include <gtest/gtest.h>

#include "core/core.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::PixelOp;
using alib::ScanOrder;

alib::Call con8_convolve() {
  alib::OpParams p;
  p.coeffs.assign(9, 1);
  p.shift = 3;
  return Call::make_intra(PixelOp::Convolve, alib::Neighborhood::con8(),
                          ChannelMask::y(), ChannelMask::y(), p);
}

struct TimingCase {
  std::string label;
  core::EngineConfig config;
  Call call;
  bool needs_b;
  Size frame;
};

std::vector<TimingCase> timing_cases() {
  std::vector<TimingCase> cases;
  const Size small{48, 32};
  const Size tall{32, 64};

  cases.push_back({"intra_small", {}, con8_convolve(), false, small});
  cases.push_back(
      {"inter_small", {}, Call::make_inter(PixelOp::AbsDiff), true, small});
  {
    Call c = con8_convolve();
    c.scan = ScanOrder::ColumnMajor;
    cases.push_back({"intra_colscan", {}, c, false, tall});
  }
  {
    core::EngineConfig fast_bus;
    fast_bus.bus_width_bits = 64;
    cases.push_back({"bus64", fast_bus, con8_convolve(), false, small});
  }
  {
    core::EngineConfig eff;
    eff.bus_efficiency = 0.6;
    cases.push_back({"low_efficiency", eff, con8_convolve(), false, small});
  }
  {
    core::EngineConfig strict;
    strict.strict_inter_sequencing = true;
    cases.push_back(
        {"strict_inter", strict, Call::make_inter(PixelOp::Add), true, small});
  }
  {
    Call c = Call::make_intra(PixelOp::Convolve, alib::Neighborhood::vline(9),
                              ChannelMask::y(), ChannelMask::y(),
                              [] {
                                alib::OpParams p;
                                p.coeffs.assign(9, 1);
                                p.shift = 3;
                                return p;
                              }());
    cases.push_back({"vline9_worstcase", {}, c, false, small});
  }
  return cases;
}

class AnalyticVsCycle : public ::testing::TestWithParam<int> {};

TEST_P(AnalyticVsCycle, TotalCyclesWithinFivePercent) {
  const TimingCase tc =
      timing_cases()[static_cast<std::size_t>(GetParam())];
  const img::Image a = img::make_test_frame(tc.frame, 1);
  const img::Image b = img::make_test_frame(tc.frame, 2);

  core::EngineRunStats cycle;
  core::simulate_call(tc.config, tc.call, a, tc.needs_b ? &b : nullptr,
                      &cycle);
  const core::EngineRunStats analytic =
      core::analytic_run_stats(tc.config, tc.call, tc.frame);

  const double rel =
      std::abs(static_cast<double>(analytic.cycles) -
               static_cast<double>(cycle.cycles)) /
      static_cast<double>(cycle.cycles);
  EXPECT_LT(rel, 0.05) << tc.label << ": cycle=" << cycle.cycles
                       << " analytic=" << analytic.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AnalyticVsCycle,
    ::testing::Range(0, static_cast<int>(timing_cases().size())),
    [](const ::testing::TestParamInfo<int>& tpi) {
      return timing_cases()[static_cast<std::size_t>(tpi.param)].label;
    });

TEST(EngineTiming, NormalCallsAreBusBound) {
  // "the performance of the design is constraint by the bandwidth of the
  // PCI bus which happens to be the bottleneck of the system".
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  for (const bool inter : {false, true}) {
    core::EngineRunStats run;
    core::simulate_call({}, inter ? Call::make_inter(PixelOp::AbsDiff)
                                  : con8_convolve(),
                        a, inter ? &b : nullptr, &run);
    EXPECT_LT(run.non_bus_fraction_of_transfer(), 0.02)
        << (inter ? "inter" : "intra");
  }
}

TEST(EngineTiming, StrictInterWastesAboutOneEighth) {
  // "Even in this situation the time wasted not due to the PCI
  // transferences is a 12.5% of the time needed to transfer the images."
  core::EngineConfig strict;
  strict.strict_inter_sequencing = true;
  const img::Image a = img::make_test_frame(img::formats::kCif, 1);
  const img::Image b = img::make_test_frame(img::formats::kCif, 2);
  core::EngineRunStats run;
  core::simulate_call(strict, Call::make_inter(PixelOp::AbsDiff), a, &b,
                      &run);
  EXPECT_GT(run.non_bus_fraction_of_transfer(), 0.08);
  EXPECT_LT(run.non_bus_fraction_of_transfer(), 0.18);
}

TEST(EngineTiming, Table2HardwareCountsEmergeFromDataflowOnCif) {
  // The simulated TxU traffic must land exactly on the paper's 202,752
  // transactions for a CIF frame, for all four table rows.
  const img::Image a = img::make_test_frame(img::formats::kCif, 1);
  const img::Image b = img::make_test_frame(img::formats::kCif, 2);
  const u64 expected = 202752;

  struct Row {
    const char* label;
    Call call;
    bool needs_b;
  };
  const std::vector<Row> rows = {
      {"inter_y", Call::make_inter(PixelOp::AbsDiff), true},
      {"intra_con0",
       Call::make_intra(PixelOp::Scale, alib::Neighborhood::con0()), false},
      {"intra_con8", con8_convolve(), false},
      {"intra_con8_yuv",
       Call::make_intra(PixelOp::MorphGradient, alib::Neighborhood::con8(),
                        ChannelMask::yuv(), ChannelMask::yuv()),
       false},
  };
  for (const Row& row : rows) {
    core::EngineRunStats run;
    core::simulate_call({}, row.call, a, row.needs_b ? &b : nullptr, &run);
    EXPECT_EQ(run.zbt_read_transactions + run.zbt_write_transactions,
              expected)
        << row.label;
  }
}

TEST(EngineTiming, WiderBusIsFaster) {
  const img::Image a = test::small_frame();
  core::EngineConfig narrow;
  core::EngineConfig wide;
  wide.bus_width_bits = 64;
  core::EngineRunStats n;
  core::EngineRunStats w;
  core::simulate_call(narrow, con8_convolve(), a, nullptr, &n);
  core::simulate_call(wide, con8_convolve(), a, nullptr, &w);
  EXPECT_LT(w.cycles, n.cycles);
}

TEST(EngineTiming, LowerEfficiencyIsSlower) {
  const img::Image a = test::small_frame();
  core::EngineConfig good;
  core::EngineConfig bad;
  bad.bus_efficiency = 0.5;
  core::EngineRunStats g;
  core::EngineRunStats b;
  core::simulate_call(good, con8_convolve(), a, nullptr, &g);
  core::simulate_call(bad, con8_convolve(), a, nullptr, &b);
  EXPECT_GT(b.cycles, g.cycles);
}

TEST(EngineTiming, TinyOimForcesStallsButSameResult) {
  const img::Image a = test::small_frame();
  core::EngineConfig tiny;
  tiny.oim_lines = 1;
  core::EngineRunStats constrained;
  const alib::CallResult r1 =
      core::simulate_call(tiny, con8_convolve(), a, nullptr, &constrained);
  core::EngineRunStats roomy;
  const alib::CallResult r2 =
      core::simulate_call({}, con8_convolve(), a, nullptr, &roomy);
  EXPECT_EQ(r1.output, r2.output);  // backpressure never corrupts data
  EXPECT_GE(constrained.pu_stall_oim, roomy.pu_stall_oim);
}

TEST(EngineTiming, PlcInstructionStreamShape) {
  const img::Image a = test::small_frame();
  core::EngineRunStats run;
  core::simulate_call({}, con8_convolve(), a, nullptr, &run);
  const auto pixels = static_cast<u64>(a.pixel_count());
  EXPECT_EQ(run.plc.pixel_cycles, pixels);
  EXPECT_EQ(run.plc.scan_instr, pixels);
  EXPECT_EQ(run.plc.op_instr, pixels);
  EXPECT_EQ(run.plc.store_instr, pixels);
  // One LOAD per line start, SHIFTs elsewhere.
  EXPECT_EQ(run.plc.load_instr, static_cast<u64>(a.height()));
  EXPECT_EQ(run.plc.shift_instr, pixels - static_cast<u64>(a.height()));
  EXPECT_EQ(run.plc.startup_cycles,
            static_cast<u64>(core::EngineConfig{}.pipeline_stages - 1));
}

TEST(EngineTiming, IimParallelReadsOnePerPixelCycle) {
  // "the whole neighbourhood can be obtained in only one cycle".
  const img::Image a = test::small_frame();
  core::EngineRunStats run;
  core::simulate_call({}, con8_convolve(), a, nullptr, &run);
  EXPECT_EQ(run.iim_parallel_reads, static_cast<u64>(a.pixel_count()));
  EXPECT_GT(run.iim_block_reads, run.iim_parallel_reads);
}

TEST(EngineTiming, InterruptsCountedPerStripChunk) {
  const img::Image a = test::small_frame();  // 32 lines = 2 strips
  core::EngineRunStats run;
  core::simulate_call({}, con8_convolve(), a, nullptr, &run);
  // setup + 2 input strips + 1 output strip-chunk... at least 4.
  EXPECT_GE(run.interrupts, 4u);
}

TEST(EngineTiming, SegmentCallNeedsFullFrameFirst) {
  // The segment extension cannot overlap with the transfer: its cycle count
  // must exceed input + output transfer plus one traversal.
  const img::Image a = test::small_frame();
  alib::SegmentSpec spec;
  spec.seeds = {{10, 10}};
  spec.luma_threshold = 255;
  const Call call = Call::make_segment(
      PixelOp::Copy, alib::Neighborhood::con8(), spec, ChannelMask::y(),
      ChannelMask::y().with(Channel::Alfa));
  core::EngineRunStats run;
  core::simulate_call({}, call, a, nullptr, &run);
  const auto pixels = static_cast<u64>(a.pixel_count());
  EXPECT_GE(run.cycles, run.bus_busy_cycles + pixels * 9);
  EXPECT_EQ(run.zbt_write_transactions, pixels);
}

TEST(EngineTiming, AnalyticSegmentMatchesSimulatedShape) {
  const img::Image a = test::small_frame();
  alib::SegmentSpec spec;
  spec.seeds = {{10, 10}};
  spec.luma_threshold = 255;
  const Call call = Call::make_segment(
      PixelOp::Copy, alib::Neighborhood::con8(), spec, ChannelMask::y(),
      ChannelMask::y().with(Channel::Alfa));
  core::EngineRunStats cycle;
  core::simulate_call({}, call, a, nullptr, &cycle);
  const core::EngineRunStats analytic = core::analytic_run_stats(
      {}, call, a.size(), cycle.pixels,
      static_cast<i64>(cycle.zbt_read_transactions -
                       static_cast<u64>(cycle.pixels) * 9));
  const double rel = std::abs(static_cast<double>(analytic.cycles) -
                              static_cast<double>(cycle.cycles)) /
                     static_cast<double>(cycle.cycles);
  EXPECT_LT(rel, 0.08);
}

}  // namespace
}  // namespace ae
