// Tests for the addressing vocabulary: neighborhood shapes, the window
// reuse model (entering offsets) and the hardware's 9-line limit.
#include <gtest/gtest.h>

#include "addresslib/addressing.hpp"

namespace ae::alib {
namespace {

TEST(Neighborhood, NamedShapesHaveExpectedSizes) {
  EXPECT_EQ(Neighborhood::con0().size(), 1u);
  EXPECT_EQ(Neighborhood::con4().size(), 5u);
  EXPECT_EQ(Neighborhood::con8().size(), 9u);
  EXPECT_EQ(Neighborhood::rect(5, 3).size(), 15u);
  EXPECT_EQ(Neighborhood::vline(9).size(), 9u);
  EXPECT_EQ(Neighborhood::hline(7).size(), 7u);
}

TEST(Neighborhood, BoundingBoxes) {
  EXPECT_EQ(Neighborhood::con8().bounding_box(), (Rect{-1, -1, 3, 3}));
  EXPECT_EQ(Neighborhood::vline(9).bounding_box(), (Rect{0, -4, 1, 9}));
  EXPECT_EQ(Neighborhood::con0().bounding_box(), (Rect{0, 0, 1, 1}));
  EXPECT_EQ(Neighborhood::con8().height(), 3);
  EXPECT_EQ(Neighborhood::vline(9).height(), 9);
  EXPECT_EQ(Neighborhood::hline(5).width(), 5);
}

TEST(Neighborhood, OffsetsDeduplicatedAndSorted) {
  const Neighborhood n({{1, 0}, {0, 0}, {1, 0}, {-1, 0}});
  EXPECT_EQ(n.size(), 3u);
  EXPECT_EQ(n.offsets().front(), (Point{-1, 0}));
  EXPECT_EQ(n.offsets().back(), (Point{1, 0}));
}

TEST(Neighborhood, NineLineLimitEnforced) {
  EXPECT_NO_THROW(Neighborhood::vline(9));
  EXPECT_THROW(Neighborhood({{0, -5}, {0, 5}}), InvalidArgument);
  EXPECT_THROW(Neighborhood({{-5, 0}, {5, 0}}), InvalidArgument);
  EXPECT_THROW(Neighborhood(std::vector<Point>{}), InvalidArgument);
}

TEST(Neighborhood, RectRequiresOddExtents) {
  EXPECT_THROW(Neighborhood::rect(4, 3), InvalidArgument);
  EXPECT_THROW(Neighborhood::rect(3, 0), InvalidArgument);
  EXPECT_THROW(Neighborhood::vline(4), InvalidArgument);
  EXPECT_THROW(Neighborhood::hline(-1), InvalidArgument);
}

TEST(Neighborhood, Contains) {
  const Neighborhood n = Neighborhood::con4();
  EXPECT_TRUE(n.contains({0, 0}));
  EXPECT_TRUE(n.contains({0, -1}));
  EXPECT_FALSE(n.contains({1, 1}));
}

// The Table 2 loads-per-step model: CON_8 loads 3 new pixels per step,
// CON_0 loads 1, and the 9-line vertical worst case loads 9 when the scan
// runs perpendicular to it.
struct EnteringCase {
  Neighborhood nbhd;
  ScanOrder scan;
  i64 expected;
};

class EnteringOffsets : public ::testing::TestWithParam<int> {};

std::vector<EnteringCase> entering_cases() {
  return {
      {Neighborhood::con0(), ScanOrder::RowMajor, 1},
      {Neighborhood::con0(), ScanOrder::ColumnMajor, 1},
      {Neighborhood::con8(), ScanOrder::RowMajor, 3},
      {Neighborhood::con8(), ScanOrder::ColumnMajor, 3},
      {Neighborhood::con4(), ScanOrder::RowMajor, 3},
      {Neighborhood::con4(), ScanOrder::ColumnMajor, 3},
      {Neighborhood::vline(9), ScanOrder::RowMajor, 9},
      {Neighborhood::vline(9), ScanOrder::ColumnMajor, 1},
      {Neighborhood::hline(9), ScanOrder::RowMajor, 1},
      {Neighborhood::hline(9), ScanOrder::ColumnMajor, 9},
      {Neighborhood::rect(5, 5), ScanOrder::RowMajor, 5},
      {Neighborhood::rect(5, 5), ScanOrder::ColumnMajor, 5},
  };
}

TEST_P(EnteringOffsets, LoadsPerStepMatchesWindowModel) {
  const EnteringCase c = entering_cases()[static_cast<std::size_t>(GetParam())];
  EXPECT_EQ(c.nbhd.loads_per_step(c.scan), c.expected)
      << c.nbhd.name() << " scan=" << to_string(c.scan);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EnteringOffsets,
    ::testing::Range(0, static_cast<int>(entering_cases().size())));

TEST(Neighborhood, EnteringOffsetsAreWithinShape) {
  const Neighborhood n = Neighborhood::con8();
  for (const Point p : n.entering_offsets(ScanOrder::RowMajor))
    EXPECT_TRUE(n.contains(p));
  // For CON_8 under row-major scan the entering column is the right edge.
  for (const Point p : n.entering_offsets(ScanOrder::RowMajor))
    EXPECT_EQ(p.x, 1);
}

TEST(Connectivity, OffsetCounts) {
  EXPECT_EQ(connectivity_offsets(Connectivity::Four).size(), 4u);
  EXPECT_EQ(connectivity_offsets(Connectivity::Eight).size(), 8u);
}

TEST(Names, ToStringCoverage) {
  EXPECT_EQ(to_string(ScanOrder::RowMajor), "row-major");
  EXPECT_EQ(to_string(ScanOrder::ColumnMajor), "column-major");
  EXPECT_EQ(to_string(BorderPolicy::Replicate), "replicate");
  EXPECT_EQ(to_string(BorderPolicy::Constant), "constant");
  EXPECT_EQ(to_string(Connectivity::Four), "4-connected");
  EXPECT_EQ(Neighborhood::con8().name(), "CON_8");
  EXPECT_EQ(Neighborhood::rect(3, 5).name(), "RECT_3x5");
}

}  // namespace
}  // namespace ae::alib
