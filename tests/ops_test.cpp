// Kernel-level tests: every pixel sub-operation against hand-computed
// expectations on tiny fixtures, clamping behaviour, side-port accumulators
// and parameter validation.
#include <gtest/gtest.h>

#include "addresslib/ops.hpp"
#include "addresslib/scan.hpp"
#include "image/image.hpp"

namespace ae::alib {
namespace {

/// 3x3 fixture with known luma values:
///   10  20  30
///   40  50  60
///   70  80  90
img::Image fixture3x3() {
  img::Image im(3, 3);
  u8 v = 10;
  for (i32 y = 0; y < 3; ++y)
    for (i32 x = 0; x < 3; ++x) {
      im.at(x, y) = img::Pixel::gray(v);
      v = static_cast<u8>(v + 10);
    }
  return im;
}

/// Window centered on the fixture's middle pixel.
ImageWindow center_window(const img::Image& im) {
  ImageWindow w(im, BorderPolicy::Replicate, img::Pixel{});
  w.move_to({1, 1});
  return w;
}

img::Pixel run_intra(PixelOp op, const Neighborhood& n, const OpParams& p,
                     ChannelMask out, SideAccum* side_out = nullptr) {
  const img::Image im = fixture3x3();
  const ImageWindow w = center_window(im);
  SideAccum side;
  const img::Pixel r = apply_intra(op, p, n, w, ChannelMask::y(), out, side);
  if (side_out != nullptr) *side_out = side;
  return r;
}

TEST(IntraOps, CopyReturnsCenter) {
  EXPECT_EQ(run_intra(PixelOp::Copy, Neighborhood::con0(), {},
                      ChannelMask::y())
                .y,
            50);
}

TEST(IntraOps, ConvolveBoxSum) {
  OpParams p;
  p.coeffs.assign(9, 1);
  // sum = 10+20+...+90 = 450; >>0 = 450 -> clamps to 255.
  EXPECT_EQ(run_intra(PixelOp::Convolve, Neighborhood::con8(), p,
                      ChannelMask::y())
                .y,
            255);
  p.shift = 4;  // 450 >> 4 = 28
  EXPECT_EQ(run_intra(PixelOp::Convolve, Neighborhood::con8(), p,
                      ChannelMask::y())
                .y,
            28);
  p.bias = 100;  // 28 + 100
  EXPECT_EQ(run_intra(PixelOp::Convolve, Neighborhood::con8(), p,
                      ChannelMask::y())
                .y,
            128);
}

TEST(IntraOps, ConvolveNegativeClampsToZero) {
  OpParams p;
  p.coeffs.assign(9, -1);
  EXPECT_EQ(run_intra(PixelOp::Convolve, Neighborhood::con8(), p,
                      ChannelMask::y())
                .y,
            0);
}

TEST(IntraOps, GradientXOnRamp) {
  // gx = (30+2*60+90) - (10+2*40+70) = 240 - 170... recompute: columns are
  // x: left 10,40,70 right 30,60,90 -> gx = (30+120+90)-(10+80+70) = 80.
  EXPECT_EQ(run_intra(PixelOp::GradientX, Neighborhood::con8(), {},
                      ChannelMask::y())
                .y,
            80);
}

TEST(IntraOps, GradientYOnRamp) {
  // rows: top 10,20,30 bottom 70,80,90 -> gy = (70+160+90)... = 240.
  EXPECT_EQ(run_intra(PixelOp::GradientY, Neighborhood::con8(), {},
                      ChannelMask::y())
                .y,
            240);
}

TEST(IntraOps, GradientMagIsHalfSum) {
  // (80 + 240) / 2 = 160.
  EXPECT_EQ(run_intra(PixelOp::GradientMag, Neighborhood::con8(), {},
                      ChannelMask::y())
                .y,
            160);
}

TEST(IntraOps, MorphGradientMaxMinusMin) {
  EXPECT_EQ(run_intra(PixelOp::MorphGradient, Neighborhood::con8(), {},
                      ChannelMask::y())
                .y,
            80);  // 90 - 10
}

TEST(IntraOps, ErodeDilate) {
  EXPECT_EQ(run_intra(PixelOp::Erode, Neighborhood::con8(), {},
                      ChannelMask::y())
                .y,
            10);
  EXPECT_EQ(run_intra(PixelOp::Dilate, Neighborhood::con8(), {},
                      ChannelMask::y())
                .y,
            90);
  EXPECT_EQ(run_intra(PixelOp::Erode, Neighborhood::con4(), {},
                      ChannelMask::y())
                .y,
            20);  // cross: 20,40,50,60,80
}

TEST(IntraOps, MedianOfNine) {
  EXPECT_EQ(run_intra(PixelOp::Median, Neighborhood::con8(), {},
                      ChannelMask::y())
                .y,
            50);
  EXPECT_EQ(run_intra(PixelOp::Median, Neighborhood::con4(), {},
                      ChannelMask::y())
                .y,
            50);
}

TEST(IntraOps, ThresholdBinarizes) {
  OpParams p;
  p.threshold = 40;
  EXPECT_EQ(run_intra(PixelOp::Threshold, Neighborhood::con0(), p,
                      ChannelMask::y())
                .y,
            255);  // center 50 > 40
  p.threshold = 60;
  EXPECT_EQ(run_intra(PixelOp::Threshold, Neighborhood::con0(), p,
                      ChannelMask::y())
                .y,
            0);
}

TEST(IntraOps, ScaleAffine) {
  OpParams p;
  p.scale_num = 3;
  p.shift = 1;
  p.bias = 5;
  // 50*3>>1 + 5 = 75 + 5 = 80.
  EXPECT_EQ(run_intra(PixelOp::Scale, Neighborhood::con0(), p,
                      ChannelMask::y())
                .y,
            80);
}

TEST(IntraOps, HomogeneityDistanceAndVerdict) {
  OpParams p;
  p.threshold = 45;
  const ChannelMask out = ChannelMask::alfa().with(Channel::Aux);
  const img::Pixel r =
      run_intra(PixelOp::Homogeneity, Neighborhood::con8(), p, out);
  EXPECT_EQ(r.aux, 40);   // max |neighbor - 50| = |10-50| = |90-50| = 40
  EXPECT_EQ(r.alfa, 1);   // 40 <= 45: homogeneous
  p.threshold = 39;
  const img::Pixel r2 =
      run_intra(PixelOp::Homogeneity, Neighborhood::con8(), p, out);
  EXPECT_EQ(r2.alfa, 0);
}

TEST(IntraOps, HistogramAccumulatesCenter) {
  SideAccum side;
  run_intra(PixelOp::Histogram, Neighborhood::con0(), {}, ChannelMask::y(),
            &side);
  EXPECT_EQ(side.histogram[50], 1u);
}

TEST(IntraOps, GradientPackBiasesSobel) {
  const ChannelMask out = ChannelMask::alfa().with(Channel::Aux);
  const img::Pixel r =
      run_intra(PixelOp::GradientPack, Neighborhood::con8(), {}, out);
  EXPECT_EQ(static_cast<i32>(r.alfa) - kGradBias, 80);   // gx
  EXPECT_EQ(static_cast<i32>(r.aux) - kGradBias, 240);   // gy
  EXPECT_EQ(r.y, 50);  // luma passthrough
}

TEST(IntraOps, TableLookupTranslatesAlfa) {
  img::Image im = fixture3x3();
  im.at(1, 1).alfa = 3;
  ImageWindow w(im, BorderPolicy::Replicate, img::Pixel{});
  w.move_to({1, 1});
  OpParams p;
  p.table = {0, 10, 20, 30};
  SideAccum side;
  const img::Pixel r =
      apply_intra(PixelOp::TableLookup, p, Neighborhood::con0(), w,
                  ChannelMask::alfa(), ChannelMask::alfa(), side);
  EXPECT_EQ(r.alfa, 30);
  EXPECT_EQ(r.y, 50);  // passthrough
  // Out-of-table ids pass through unchanged.
  im.at(1, 1).alfa = 99;
  const img::Pixel r2 =
      apply_intra(PixelOp::TableLookup, p, Neighborhood::con0(), w,
                  ChannelMask::alfa(), ChannelMask::alfa(), side);
  EXPECT_EQ(r2.alfa, 99);
}

TEST(OpValidation, TableLookupNeedsTableAndAlfa) {
  EXPECT_THROW(validate_op(PixelOp::TableLookup, {}, nullptr,
                           ChannelMask::alfa(), ChannelMask::alfa()),
               InvalidArgument);
  OpParams p;
  p.table = {0, 1};
  EXPECT_THROW(validate_op(PixelOp::TableLookup, p, nullptr, ChannelMask::y(),
                           ChannelMask::y()),
               InvalidArgument);
  EXPECT_NO_THROW(validate_op(PixelOp::TableLookup, p, nullptr,
                              ChannelMask::alfa(), ChannelMask::alfa()));
}

TEST(IntraOps, PassthroughOfUnselectedChannels) {
  img::Image im = fixture3x3();
  im.at(1, 1).alfa = 777;
  ImageWindow w(im, BorderPolicy::Replicate, img::Pixel{});
  w.move_to({1, 1});
  SideAccum side;
  const img::Pixel r = apply_intra(PixelOp::Dilate, {}, Neighborhood::con8(),
                                   w, ChannelMask::y(), ChannelMask::y(),
                                   side);
  EXPECT_EQ(r.alfa, 777);  // untouched
  EXPECT_EQ(r.y, 90);
}

// ---- inter ops -------------------------------------------------------------

struct InterCase {
  PixelOp op;
  u8 a, b;
  i32 threshold;
  i32 shift;
  u8 expected;
};

class InterOps : public ::testing::TestWithParam<int> {};

std::vector<InterCase> inter_cases() {
  return {
      {PixelOp::Copy, 7, 99, 0, 0, 7},
      {PixelOp::Add, 200, 100, 0, 0, 255},  // clamps
      {PixelOp::Add, 100, 50, 0, 0, 150},
      {PixelOp::Sub, 100, 30, 0, 0, 70},
      {PixelOp::Sub, 30, 100, 0, 0, 0},  // clamps at zero
      {PixelOp::AbsDiff, 30, 100, 0, 0, 70},
      {PixelOp::AbsDiff, 100, 30, 0, 0, 70},
      {PixelOp::Mult, 16, 16, 0, 4, 16},  // 256 >> 4
      {PixelOp::Min, 12, 90, 0, 0, 12},
      {PixelOp::Max, 12, 90, 0, 0, 90},
      {PixelOp::Average, 10, 11, 0, 0, 11},  // rounds up
      {PixelOp::DiffMask, 10, 40, 20, 0, 255},
      {PixelOp::DiffMask, 10, 25, 20, 0, 0},
      {PixelOp::BitAnd, 0xF0, 0x3C, 0, 0, 0x30},
      {PixelOp::BitOr, 0xF0, 0x3C, 0, 0, 0xFC},
      {PixelOp::BitXor, 0xF0, 0x3C, 0, 0, 0xCC},
  };
}

TEST_P(InterOps, ChannelArithmetic) {
  const InterCase c = inter_cases()[static_cast<std::size_t>(GetParam())];
  OpParams p;
  p.threshold = c.threshold;
  p.shift = c.shift;
  SideAccum side;
  const img::Pixel r =
      apply_inter(c.op, p, img::Pixel::gray(c.a), img::Pixel::gray(c.b),
                  Point{3, 4}, ChannelMask::y(), ChannelMask::y(), side);
  EXPECT_EQ(r.y, c.expected) << to_string(c.op);
}

INSTANTIATE_TEST_SUITE_P(
    Table, InterOps,
    ::testing::Range(0, static_cast<int>(inter_cases().size())));

TEST(InterOpsExtra, SadAccumulatesMaskedChannels) {
  SideAccum side;
  img::Pixel a = img::Pixel::gray(100);
  img::Pixel b = img::Pixel::gray(90);
  a.u = 50;
  b.u = 60;
  apply_inter(PixelOp::Sad, {}, a, b, Point{0, 0}, ChannelMask::yuv(),
              ChannelMask::yuv(), side);
  EXPECT_EQ(side.sad, 10u + 10u + 0u);  // |y| + |u| + |v|
}

TEST(InterOpsExtra, GmeAccumSums) {
  OpParams p;
  p.threshold = 100;
  SideAccum side;
  img::Pixel ref = img::Pixel::gray(120);
  img::Pixel warped = img::Pixel::gray(100);  // r = +20
  warped.alfa = static_cast<u16>(kGradBias + 3);   // gx = 3
  warped.aux = static_cast<u16>(kGradBias - 2);    // gy = -2
  const img::Pixel out =
      apply_inter(PixelOp::GmeAccum, p, ref, warped, Point{0, 0},
                  ChannelMask::y(), ChannelMask::y(), side);
  EXPECT_EQ(out.y, 20);
  EXPECT_EQ(side.gme[0], 9);    // gx*gx
  EXPECT_EQ(side.gme[1], -6);   // gx*gy
  EXPECT_EQ(side.gme[2], 4);    // gy*gy
  EXPECT_EQ(side.gme[3], 60);   // gx*r
  EXPECT_EQ(side.gme[4], -40);  // gy*r
  EXPECT_EQ(side.gme[5], 1);    // inliers
  EXPECT_EQ(side.sad, 20u);
}

TEST(InterOpsExtra, GmeAccumRobustCutoffSkipsOutliers) {
  OpParams p;
  p.threshold = 10;
  SideAccum side;
  apply_inter(PixelOp::GmeAccum, p, img::Pixel::gray(200),
              img::Pixel::gray(100), Point{0, 0}, ChannelMask::y(),
              ChannelMask::y(), side);
  EXPECT_EQ(side.gme[5], 0);   // outlier did not vote
  EXPECT_EQ(side.sad, 100u);   // but SAD still counts it
}

TEST(InterOpsExtra, MultiChannelMaskApplies) {
  SideAccum side;
  img::Pixel a = img::Pixel::gray(10);
  img::Pixel b = img::Pixel::gray(30);
  a.u = 100;
  b.u = 90;
  const img::Pixel r = apply_inter(PixelOp::AbsDiff, {}, a, b, Point{0, 0},
                                   ChannelMask::yuv(), ChannelMask::yuv(),
                                   side);
  EXPECT_EQ(r.y, 20);
  EXPECT_EQ(r.u, 10);
  EXPECT_EQ(r.v, 0);
}

TEST(SideAccum, MergeAddsEverything) {
  SideAccum a;
  SideAccum b;
  a.sad = 5;
  b.sad = 7;
  a.histogram[3] = 2;
  b.histogram[3] = 3;
  a.gme[0] = 10;
  b.gme[0] = -4;
  a.merge(b);
  EXPECT_EQ(a.sad, 12u);
  EXPECT_EQ(a.histogram[3], 5u);
  EXPECT_EQ(a.gme[0], 6);
}

// ---- classification / validation ------------------------------------------

TEST(OpClassification, InterIntraPartition) {
  EXPECT_TRUE(is_inter_op(PixelOp::Sad));
  EXPECT_TRUE(is_inter_op(PixelOp::GmeAccum));
  EXPECT_FALSE(is_inter_op(PixelOp::Erode));
  EXPECT_TRUE(is_intra_op(PixelOp::GradientPack));
  EXPECT_TRUE(is_intra_op(PixelOp::Copy));
  EXPECT_TRUE(is_inter_op(PixelOp::Copy));  // Copy works in both modes
  EXPECT_FALSE(is_intra_op(PixelOp::AbsDiff));
}

TEST(OpValidation, ConvolveNeedsMatchingCoeffs) {
  OpParams p;
  p.coeffs.assign(5, 1);
  const Neighborhood n = Neighborhood::con8();
  EXPECT_THROW(validate_op(PixelOp::Convolve, p, &n, ChannelMask::y(),
                           ChannelMask::y()),
               InvalidArgument);
  p.coeffs.assign(9, 1);
  EXPECT_NO_THROW(validate_op(PixelOp::Convolve, p, &n, ChannelMask::y(),
                              ChannelMask::y()));
}

TEST(OpValidation, GradientNeedsCon8) {
  const Neighborhood n4 = Neighborhood::con4();
  EXPECT_THROW(validate_op(PixelOp::GradientX, {}, &n4, ChannelMask::y(),
                           ChannelMask::y()),
               InvalidArgument);
}

TEST(OpValidation, HomogeneityNeedsSideOutputs) {
  const Neighborhood n = Neighborhood::con8();
  EXPECT_THROW(validate_op(PixelOp::Homogeneity, {}, &n, ChannelMask::y(),
                           ChannelMask::y()),
               InvalidArgument);
}

TEST(OpValidation, ShiftRangeChecked) {
  OpParams p;
  p.shift = 32;
  EXPECT_THROW(validate_op(PixelOp::Scale, p, nullptr, ChannelMask::y(),
                           ChannelMask::y()),
               InvalidArgument);
  p.shift = -1;
  EXPECT_THROW(validate_op(PixelOp::Scale, p, nullptr, ChannelMask::y(),
                           ChannelMask::y()),
               InvalidArgument);
}

TEST(OpValidation, EmptyMasksRejected) {
  EXPECT_THROW(validate_op(PixelOp::Add, {}, nullptr, ChannelMask::none(),
                           ChannelMask::y()),
               InvalidArgument);
  EXPECT_THROW(validate_op(PixelOp::Add, {}, nullptr, ChannelMask::y(),
                           ChannelMask::none()),
               InvalidArgument);
}

TEST(OpCost, GrowsWithNeighborhoodAndChannels) {
  const i64 c1 = op_datapath_cost(PixelOp::Convolve, Neighborhood::con8(),
                                  ChannelMask::y());
  const i64 c2 = op_datapath_cost(PixelOp::Convolve, Neighborhood::rect(5, 5),
                                  ChannelMask::y());
  const i64 c3 = op_datapath_cost(PixelOp::Convolve, Neighborhood::con8(),
                                  ChannelMask::yuv());
  EXPECT_GT(c2, c1);
  EXPECT_EQ(c3, 3 * c1);
}

TEST(OpNames, AllOpsHaveNames) {
  for (int i = 0; i <= static_cast<int>(PixelOp::GmeAccum); ++i) {
    EXPECT_NE(to_string(static_cast<PixelOp>(i)), "?");
  }
}

}  // namespace
}  // namespace ae::alib
