// aealloc — whole-program static residency allocation (analysis/alloc.hpp).
//
// Tier1 (everything not matching *AllocFuzz*): liveness intervals and the
// interference predicate pinned on hand-built programs, the LRU-mirror
// baseline equality against plan_program, Belady's in-place recovery of
// LRU-thrashed reuse, the never-regress fallback, the schedule hint, the
// independent legality checker against tampered plans, the alloc_json
// schema, the AEW307 lint, the farm's plan-directed execution, and aeopt's
// adoption of the schedule hint through the residency dominance proof.
//
// Tier2 (AllocFuzz*): the 520-program fuzz corpus plus fusion-biased
// multi-call programs replayed through the allocator — every plan legal
// (residency_plan_legal), the baseline provably equal to aeplan's
// Transferred words, never a regression, strictly below the cold-driver
// words whenever aeplan reports avoidable transfers, and plan-directed farm
// execution bit-exact against the serial software reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/alloc.hpp"
#include "analysis/lints.hpp"
#include "analysis/optimizer.hpp"
#include "analysis/planner.hpp"
#include "analysis/program_text.hpp"
#include "analysis/rules.hpp"
#include "analysis/verifier.hpp"
#include "core/core.hpp"
#include "serve/farm.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::Neighborhood;
using alib::PixelOp;
using analysis::AllocOptions;
using analysis::CallProgram;
using analysis::kNoFrame;
using analysis::LiveInterval;
using analysis::ResidencyPlan;
using analysis::TransferKind;

constexpr Size kFrame{48, 32};
constexpr u64 kFrameWords = 2 * 48 * 32;  // one frame as PCI words

Call intra_con8() {
  return Call::make_intra(PixelOp::GradientMag, Neighborhood::con8());
}

Call pointwise_threshold(i32 threshold = 10) {
  alib::OpParams p;
  p.threshold = threshold;
  return Call::make_intra(PixelOp::Threshold, Neighborhood::con0(),
                          ChannelMask::y(), ChannelMask::y(), p);
}

/// Sums the Transferred-classified input words of an aeplan plan — the
/// quantity the allocator's baseline must provably equal.
u64 plan_transferred_words(const analysis::ProgramPlan& plan) {
  u64 words = 0;
  for (const analysis::CallPlan& cp : plan.calls)
    for (const analysis::InputPlan& ip : cp.inputs)
      if (ip.kind == TransferKind::Transferred) words += ip.words;
  return words;
}

/// Three externals round-robined twice through two input slots: the classic
/// capacity thrash.  LRU re-uploads all six inputs; Belady's farthest-next-
/// use eviction keeps two of the second-round reads resident in place, and
/// a reorder that pairs the uses needs only the three cold uploads.
CallProgram thrash_program() {
  CallProgram p;
  const i32 x = p.add_input(kFrame, "x");
  const i32 y = p.add_input(kFrame, "y");
  const i32 z = p.add_input(kFrame, "z");
  for (const i32 f : {x, y, z, x, y, z})
    p.mark_output(p.add_call(intra_con8(), f));
  return p;
}

/// A relocation chain: every intermediate is consumed by the directly
/// following call, so aeplan's LRU machine already avoids everything that
/// is avoidable — the allocator must fall back to the mirror (saved == 0).
CallProgram chain_program() {
  CallProgram p;
  const i32 a = p.add_input(kFrame, "a");
  const i32 r0 = p.add_call(intra_con8(), a);
  const i32 r1 = p.add_call(pointwise_threshold(4), r0);
  p.mark_output(p.add_call(intra_con8(), r1));
  return p;
}

std::vector<img::Image> external_inputs(const CallProgram& program,
                                        Rng& rng) {
  std::vector<img::Image> inputs;
  for (const analysis::FrameDecl& decl : program.frames())
    if (decl.producer == kNoFrame)
      inputs.push_back(img::make_test_frame(decl.size, rng.next_u64()));
  return inputs;
}

void expect_runs_equal(const analysis::ProgramRunResult& ref,
                       const analysis::ProgramRunResult& out) {
  ASSERT_EQ(ref.outputs.size(), out.outputs.size());
  for (std::size_t i = 0; i < ref.outputs.size(); ++i) {
    SCOPED_TRACE("output " + std::to_string(i));
    test::expect_images_equal(ref.outputs[i], out.outputs[i]);
  }
  EXPECT_EQ(ref.side.sad, out.side.sad);
  EXPECT_EQ(ref.side.histogram, out.side.histogram);
  EXPECT_EQ(ref.side.gme, out.side.gme);
  auto sorted = [](std::vector<alib::SegmentInfo> s) {
    std::sort(s.begin(), s.end(),
              [](const alib::SegmentInfo& a, const alib::SegmentInfo& b) {
                return a.id < b.id;
              });
    return s;
  };
  const std::vector<alib::SegmentInfo> rs = sorted(ref.segments);
  const std::vector<alib::SegmentInfo> os = sorted(out.segments);
  ASSERT_EQ(rs.size(), os.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id, os[i].id) << "segment " << i;
    EXPECT_EQ(rs[i].pixel_count, os[i].pixel_count) << "segment " << i;
  }
}

/// Allocates under `options` and asserts the invariants every plan must
/// hold: legality, baseline equality with aeplan, and never-regress.
ResidencyPlan allocate_checked(const CallProgram& program,
                               const AllocOptions& options = {}) {
  const ResidencyPlan plan = analysis::allocate_residency(program, options);
  std::string why;
  EXPECT_TRUE(analysis::residency_plan_legal(program, plan, &why)) << why;
  EXPECT_EQ(plan.baseline_transferred_words,
            plan_transferred_words(
                analysis::plan_program(program, options.plan)));
  EXPECT_LE(plan.allocated_transferred_words,
            plan.baseline_transferred_words);
  EXPECT_EQ(plan.words_saved,
            plan.baseline_transferred_words -
                plan.allocated_transferred_words);
  return plan;
}

// ---- liveness --------------------------------------------------------------

TEST(Liveness, IntervalsArePinnedOnAHandBuiltProgram) {
  CallProgram p;
  const i32 a = p.add_input(kFrame, "a");
  const i32 b = p.add_input(kFrame, "b");
  const i32 r0 = p.add_call(intra_con8(), a);
  const i32 r1 = p.add_call(Call::make_inter(PixelOp::AbsDiff), r0, b);
  p.mark_output(r1);

  const ResidencyPlan plan = allocate_checked(p);
  ASSERT_EQ(plan.intervals.size(), 4u);

  const LiveInterval& ia = plan.intervals[static_cast<std::size_t>(a)];
  EXPECT_EQ(ia.def, kNoFrame);  // external
  EXPECT_EQ(ia.first_use, 0);
  EXPECT_EQ(ia.last_use, 0);
  EXPECT_EQ(ia.words, kFrameWords);
  EXPECT_FALSE(ia.output);
  EXPECT_TRUE(ia.bank_ok);

  const LiveInterval& ib = plan.intervals[static_cast<std::size_t>(b)];
  EXPECT_EQ(ib.def, kNoFrame);
  EXPECT_EQ(ib.first_use, 1);
  EXPECT_EQ(ib.last_use, 1);

  const LiveInterval& i0 = plan.intervals[static_cast<std::size_t>(r0)];
  EXPECT_EQ(i0.def, 0);
  EXPECT_EQ(i0.first_use, 1);
  EXPECT_EQ(i0.last_use, 1);
  EXPECT_FALSE(i0.output);

  const LiveInterval& i1 = plan.intervals[static_cast<std::size_t>(r1)];
  EXPECT_EQ(i1.def, 1);
  EXPECT_EQ(i1.first_use, kNoFrame);  // read back by the host, never on board
  EXPECT_EQ(i1.last_use, kNoFrame);
  EXPECT_TRUE(i1.output);

  // a's span [0,0] ends before b's [1,1] begins; r0 [0,1] overlaps both;
  // the never-read output r1 interferes with nothing.
  EXPECT_FALSE(analysis::frames_interfere(ia, ib));
  EXPECT_TRUE(analysis::frames_interfere(ia, i0));
  EXPECT_TRUE(analysis::frames_interfere(i0, ib));
  EXPECT_FALSE(analysis::frames_interfere(i1, ia));
  EXPECT_FALSE(analysis::frames_interfere(i1, i0));
  EXPECT_EQ(plan.interference_edges, 2);
  EXPECT_EQ(plan.max_live, 2);
}

TEST(Liveness, InterferenceIsReflexiveFreeAndSymmetric) {
  LiveInterval a;
  a.frame = 0;
  a.first_use = 0;
  a.last_use = 3;
  LiveInterval b = a;
  b.frame = 1;
  b.first_use = 2;
  b.last_use = 5;
  EXPECT_FALSE(analysis::frames_interfere(a, a));  // same frame never
  EXPECT_TRUE(analysis::frames_interfere(a, b));
  EXPECT_TRUE(analysis::frames_interfere(b, a));
  b.first_use = 4;  // disjoint: [0,3] vs [4,5]
  EXPECT_FALSE(analysis::frames_interfere(a, b));
}

// ---- assignment ------------------------------------------------------------

TEST(Alloc, BaselineEqualsAeplanTransferredWords) {
  for (const CallProgram& program :
       {thrash_program(), chain_program()}) {
    allocate_checked(program);  // asserts the equality internally
    AllocOptions in_place;
    in_place.schedule = false;
    allocate_checked(program, in_place);
  }
}

TEST(Alloc, BeladyRecoversThrashedReuseInPlace) {
  AllocOptions options;
  options.schedule = false;  // in-place: same order, only eviction changes
  const ResidencyPlan plan = allocate_checked(thrash_program(), options);
  EXPECT_FALSE(plan.reordered);
  // LRU re-uploads all six inputs; Belady keeps x and z resident across
  // their second uses (y is the farthest-next-use victim both times).
  EXPECT_EQ(plan.cold_words, 6 * kFrameWords);
  EXPECT_EQ(plan.baseline_transferred_words, 6 * kFrameWords);
  EXPECT_EQ(plan.allocated_transferred_words, 4 * kFrameWords);
  EXPECT_EQ(plan.words_saved, 2 * kFrameWords);
  EXPECT_EQ(plan.inputs_transferred, 4);
  EXPECT_EQ(plan.inputs_reused, 2);
  EXPECT_EQ(plan.inputs_relocated, 0);
  ASSERT_EQ(plan.assignments.size(), 6u);
  EXPECT_EQ(plan.assignments[3].inputs[0].kind, TransferKind::Reused);
  EXPECT_EQ(plan.assignments[5].inputs[0].kind, TransferKind::Reused);
  // After call 2 both slot frames (x and z) are read again: pinned.
  EXPECT_EQ(plan.assignments[2].keep, (std::vector<i32>{0, 2}));
  // The thrash makes all three externals pairwise live-range rivals.
  EXPECT_EQ(plan.interference_edges, 3);
  EXPECT_EQ(plan.max_live, 3);
}

TEST(Alloc, ScheduleHintPairsTheUses) {
  const CallProgram program = thrash_program();
  const ResidencyPlan plan = allocate_checked(program);
  EXPECT_TRUE(plan.reordered);
  // Pairing each frame's two uses needs only the three cold uploads.
  EXPECT_EQ(plan.allocated_transferred_words, 3 * kFrameWords);
  EXPECT_EQ(plan.words_saved, 3 * kFrameWords);
  std::vector<i32> sorted_schedule = plan.schedule;
  std::sort(sorted_schedule.begin(), sorted_schedule.end());
  EXPECT_EQ(sorted_schedule, (std::vector<i32>{0, 1, 2, 3, 4, 5}));
}

TEST(Alloc, NeverRegressesTheLruBaseline) {
  // The chain is already optimal under LRU (relocation catches every
  // intermediate): the allocator must emit the mirror's plan unchanged.
  const ResidencyPlan plan = allocate_checked(chain_program());
  EXPECT_FALSE(plan.reordered);
  EXPECT_EQ(plan.words_saved, 0u);
  const analysis::ProgramPlan lru = analysis::plan_program(chain_program());
  ASSERT_EQ(plan.assignments.size(), lru.calls.size());
  for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
    ASSERT_EQ(plan.assignments[i].inputs.size(), lru.calls[i].inputs.size());
    for (std::size_t k = 0; k < plan.assignments[i].inputs.size(); ++k)
      EXPECT_EQ(plan.assignments[i].inputs[k].kind,
                lru.calls[i].inputs[k].kind)
          << "call " << i << " input " << k;
  }
}

TEST(Alloc, ScheduleOffKeepsProgramOrder) {
  AllocOptions options;
  options.schedule = false;
  const ResidencyPlan plan = allocate_checked(thrash_program(), options);
  EXPECT_FALSE(plan.reordered);
  EXPECT_EQ(plan.schedule, (std::vector<i32>{0, 1, 2, 3, 4, 5}));
  for (std::size_t i = 0; i < plan.assignments.size(); ++i)
    EXPECT_EQ(plan.assignments[i].call_index, static_cast<i32>(i));
}

// ---- legality --------------------------------------------------------------

TEST(Legality, FlagsTamperedPlans) {
  const CallProgram program = thrash_program();
  AllocOptions options;
  options.schedule = false;
  const ResidencyPlan plan = analysis::allocate_residency(program, options);
  ASSERT_TRUE(analysis::residency_plan_legal(program, plan));

  {
    ResidencyPlan t = plan;  // claim a reuse of a frame not in any slot
    t.assignments[1].inputs[0].kind = TransferKind::Reused;
    std::string why;
    EXPECT_FALSE(analysis::residency_plan_legal(program, t, &why));
    EXPECT_FALSE(why.empty());
  }
  {
    ResidencyPlan t = plan;  // duplicate schedule entry: not a permutation
    t.schedule[1] = 0;
    std::string why;
    EXPECT_FALSE(analysis::residency_plan_legal(program, t, &why));
    EXPECT_FALSE(why.empty());
  }
  {
    ResidencyPlan t = plan;  // word count diverges from the frame geometry
    t.assignments[0].inputs[0].words += 1;
    std::string why;
    EXPECT_FALSE(analysis::residency_plan_legal(program, t, &why));
    EXPECT_FALSE(why.empty());
  }
  {
    ResidencyPlan t = plan;  // keep set names a frame not in any slot
    t.assignments[0].keep = {1};
    std::string why;
    EXPECT_FALSE(analysis::residency_plan_legal(program, t, &why));
    EXPECT_FALSE(why.empty());
  }
}

TEST(Legality, FlagsDependenceViolatingSchedules) {
  const CallProgram program = chain_program();
  const ResidencyPlan plan = analysis::allocate_residency(program);
  ResidencyPlan t = plan;  // call 1 consumes call 0's result
  std::swap(t.schedule[0], t.schedule[1]);
  std::string why;
  EXPECT_FALSE(analysis::residency_plan_legal(program, t, &why));
  EXPECT_FALSE(why.empty());
}

// ---- renderings ------------------------------------------------------------

TEST(AllocJson, SchemaIsPinned) {
  AllocOptions options;
  options.schedule = false;
  const CallProgram program = thrash_program();
  const ResidencyPlan plan = analysis::allocate_residency(program, options);
  const std::string json = analysis::alloc_json(plan, program);
  EXPECT_NE(json.find("\"schedule\":[0,1,2,3,4,5]"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"reordered\":false"), std::string::npos);
  EXPECT_NE(json.find("\"intervals\":[{\"frame\":\"x\",\"def\":-1,"
                      "\"first_use\":0,\"last_use\":3,\"words\":3072,"
                      "\"output\":false,\"bank_ok\":true}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"interference\":{\"edges\":3,\"max_live\":3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"words\":{\"cold\":18432,\"baseline\":18432,"
                      "\"allocated\":12288,\"saved\":6144}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"inputs\":{\"transferred\":4,\"reused\":2,"
                      "\"relocated\":0}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"kind\":\"reused\""), std::string::npos) << json;
}

TEST(AllocFormat, SummarizesTotals) {
  AllocOptions options;
  options.schedule = false;
  const CallProgram program = thrash_program();
  const ResidencyPlan plan = analysis::allocate_residency(program, options);
  const std::string text = plan.format(program);
  EXPECT_NE(text.find("alloc: in-order"), std::string::npos) << text;
  EXPECT_NE(text.find("saved=6144w"), std::string::npos) << text;
}

// ---- AEW307 ----------------------------------------------------------------

TEST(Lints, Aew307AllocatableResidency) {
  // Positive: the thrash re-uploads x and z although farthest-next-use
  // eviction would have kept them resident in the same order.
  const analysis::Report positive = analysis::lint_program(thrash_program());
  EXPECT_TRUE(positive.mentions(analysis::rules::kAllocatableResidency));

  // Negative: the chain's LRU schedule is already optimal — nothing for
  // the allocator to recover, so the lint must stay silent.
  const analysis::Report negative = analysis::lint_program(chain_program());
  EXPECT_FALSE(negative.mentions(analysis::rules::kAllocatableResidency));
}

TEST(Lints, Aew307DoesNotFireOnReorderOnlyGains) {
  // All of the thrash's in-place gain comes from eviction decisions; a
  // program whose only gain needs a reorder must not trigger the in-place
  // lint.  Chain with an extra independent pair: the second use of x is
  // only recoverable by hoisting, which AEW304 (not AEW307) owns.
  CallProgram p;
  const i32 x = p.add_input(kFrame, "x");
  const i32 m = p.add_input(kFrame, "m");
  const i32 n = p.add_input(kFrame, "n");
  p.mark_output(p.add_call(intra_con8(), x));
  p.mark_output(p.add_call(Call::make_inter(PixelOp::AbsDiff), m, n));
  p.mark_output(p.add_call(pointwise_threshold(), x));
  const analysis::Report report = analysis::lint_program(p);
  EXPECT_TRUE(report.mentions(analysis::rules::kReorderForReuse));
  EXPECT_FALSE(report.mentions(analysis::rules::kAllocatableResidency));
}

// ---- farm plan-directed execution ------------------------------------------

TEST(Farm, ResidencyPlanExecutionIsBitExactAndCounted) {
  const CallProgram program = thrash_program();
  Rng rng(0xA110Cu);
  const std::vector<img::Image> inputs = external_inputs(program, rng);
  alib::SoftwareBackend reference;
  const analysis::ProgramRunResult ref =
      analysis::run_program(program, reference, inputs);

  serve::FarmOptions on;
  on.shards = 2;
  on.residency_plan = true;
  serve::EngineFarm farm(on);
  const serve::ProgramExecution exec = farm.execute_program(program, inputs);
  EXPECT_TRUE(exec.allocated);
  expect_runs_equal(ref, exec.run);
  std::string why;
  EXPECT_TRUE(analysis::residency_plan_legal(program, exec.residency, &why))
      << why;
  EXPECT_EQ(exec.residency.words_saved, 3 * kFrameWords);
  const serve::FarmStats stats = farm.stats();
  EXPECT_EQ(stats.planned_programs, 1);
  EXPECT_EQ(stats.planned_words_saved, exec.residency.words_saved);

  serve::FarmOptions off;
  off.shards = 2;
  serve::EngineFarm plain(off);
  const serve::ProgramExecution raw = plain.execute_program(program, inputs);
  EXPECT_FALSE(raw.allocated);
  expect_runs_equal(ref, raw.run);
  EXPECT_EQ(plain.stats().planned_programs, 0);
}

// ---- aeopt schedule-hint adoption ------------------------------------------

/// Thrash whose natural AEW304 hoists are all dependence-blocked or
/// word-neutral: call 3 needs call 2's fresh result next to its reuse of x,
/// and hoisting the second y or z alone breaks the r2 relocation it rides
/// on.  The local hoist search stalls; only the allocator's whole-order
/// hint (pairing y's uses while keeping c2 adjacent to c3) strictly
/// decreases the LRU Transferred words.
CallProgram hint_only_program() {
  CallProgram p;
  const i32 x = p.add_input(kFrame, "x");
  const i32 y = p.add_input(kFrame, "y");
  const i32 z = p.add_input(kFrame, "z");
  p.mark_output(p.add_call(intra_con8(), x));                          // 0
  p.mark_output(p.add_call(intra_con8(), y));                          // 1
  const i32 r2 = p.add_call(intra_con8(), z);                          // 2
  p.mark_output(r2);
  p.mark_output(p.add_call(Call::make_inter(PixelOp::AbsDiff), x, r2));  // 3
  p.mark_output(p.add_call(intra_con8(), y));                          // 4
  p.mark_output(p.add_call(intra_con8(), z));                          // 5
  return p;
}

TEST(Optimizer, AdoptsTheAllocScheduleHintWhenLocalHoistsStall) {
  const CallProgram program = hint_only_program();

  analysis::OptimizeOptions without;
  without.alloc_schedule = false;
  const analysis::OptimizeResult off =
      analysis::optimize_program(program, without);
  EXPECT_FALSE(off.changed);  // every local candidate is blocked or neutral

  const analysis::OptimizeResult on = analysis::optimize_program(program);
  ASSERT_TRUE(on.changed);
  ASSERT_EQ(on.log.records.size(), 1u);
  const analysis::RewriteRecord& r = on.log.records[0];
  EXPECT_EQ(r.rule, analysis::rules::kReorderForReuse);
  EXPECT_EQ(r.kind, "reorder");
  EXPECT_EQ(r.tier, "residency");
  EXPECT_NE(r.note.find("aealloc"), std::string::npos) << r.note;
  // The adopted order pairs y's uses and keeps x's reuse adjacent to the
  // c2->c3 relocation: two of the six LRU uploads disappear.
  EXPECT_EQ(r.claimed_pci_words_delta, static_cast<i64>(2 * kFrameWords));
  EXPECT_EQ(r.claimed_cycles_delta, 0);

  Rng rng(0x5CEDu);
  alib::SoftwareBackend software;
  const std::vector<img::Image> inputs = external_inputs(program, rng);
  expect_runs_equal(analysis::run_program(program, software, inputs),
                    analysis::run_program(on.program, software, inputs));
  core::EngineBackend engine({}, core::EngineMode::CycleAccurate);
  expect_runs_equal(analysis::run_program(program, engine, inputs),
                    analysis::run_program(on.program, engine, inputs));
}

// ---- tier2: the 520-corpus replay + fusion-biased sweep --------------------

CallProgram one_call_program(const Call& call, Size size, bool needs_b) {
  CallProgram program;
  const i32 a = program.add_input(size, "a");
  const i32 b = needs_b ? program.add_input(size, "b") : kNoFrame;
  program.mark_output(program.add_call(call, a, b));
  return program;
}

/// The corpus gate: the plan must be legal, its baseline must equal
/// aeplan's Transferred words, it must never regress that baseline, and it
/// must land strictly below the cold-driver words whenever aeplan reports
/// any avoidable transfer at all.
void replay_alloc_case(const CallProgram& program) {
  const ResidencyPlan plan = analysis::allocate_residency(program);
  std::string why;
  ASSERT_TRUE(analysis::residency_plan_legal(program, plan, &why)) << why;
  const analysis::ProgramPlan lru = analysis::plan_program(program);
  EXPECT_EQ(plan.baseline_transferred_words, plan_transferred_words(lru));
  EXPECT_LE(plan.allocated_transferred_words,
            plan.baseline_transferred_words);
  if (lru.transfers_avoidable > 0) {
    EXPECT_LT(plan.allocated_transferred_words, plan.cold_words);
  }
}

// 8 seeds x 40 calls: the differential suite's corpus recipe.
TEST(AllocFuzz, DifferentialCorpusPlansAreLegalAndNeverRegress) {
  for (u64 seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull);
    for (int i = 0; i < 40; ++i) {
      const Size size = test::random_frame_size(rng);
      bool needs_b = false;
      const Call call = test::random_any_call(rng, size, needs_b);
      SCOPED_TRACE("seed " + std::to_string(seed) + " case " +
                   std::to_string(i) + ": " + call.describe());
      replay_alloc_case(one_call_program(call, size, needs_b));
    }
  }
}

// The 200 farm-sweep cases complete the 520-program corpus; every fourth
// case additionally runs through the farm's plan-directed executor and is
// held bit-exact against the serial software reference.
TEST(AllocFuzz, FarmCorpusPlansAreLegalAndExecutionsBitExact) {
  serve::FarmOptions options;
  options.shards = 2;
  options.residency_plan = true;
  serve::EngineFarm farm(options);
  alib::SoftwareBackend reference;
  Rng rng(0xD1FFu);
  i64 executed = 0;
  for (int i = 0; i < 200; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe());
    const CallProgram program = one_call_program(call, size, needs_b);
    replay_alloc_case(program);
    if (i % 4 != 0) continue;
    const std::vector<img::Image> inputs = external_inputs(program, rng);
    const serve::ProgramExecution exec =
        farm.execute_program(program, inputs);
    ASSERT_TRUE(exec.allocated);
    expect_runs_equal(analysis::run_program(program, reference, inputs),
                      exec.run);
    ++executed;
  }
  EXPECT_EQ(farm.stats().planned_programs, executed);
}

// Fusion-biased multi-call programs: the allocator's real hunting ground —
// shared inputs, relocation chains, and enough calls for eviction to bite.
TEST(AllocFuzz, FusionBiasedProgramsPlanLegallyAndRunBitExact) {
  serve::FarmOptions options;
  options.shards = 2;
  options.residency_plan = true;
  serve::EngineFarm farm(options);
  alib::SoftwareBackend reference;
  u64 saved = 0;
  for (u64 seed = 1; seed <= 60; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xA30Bu);
    const CallProgram program = test::random_fusion_biased_program(rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + ":\n" +
                 analysis::format_program(program));
    ASSERT_FALSE(analysis::verify_program(program).has_errors());
    replay_alloc_case(program);
    if (seed % 3 != 0) continue;
    const std::vector<img::Image> inputs = external_inputs(program, rng);
    const serve::ProgramExecution exec =
        farm.execute_program(program, inputs);
    ASSERT_TRUE(exec.allocated);
    saved += exec.residency.words_saved;
    expect_runs_equal(analysis::run_program(program, reference, inputs),
                      exec.run);
  }
  // The generator shares inputs across calls: if no program ever saved a
  // word, the sweep is fuzzing the wrong space.
  EXPECT_GT(saved, 0u);
}

}  // namespace
}  // namespace ae
