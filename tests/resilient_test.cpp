// ResilientSession: under any seeded fault plan the driver must hand back
// results bit-exact with the software backend — CRC-verified, retried, or
// served from the software fallback — and every injected fault must show up
// in the detection counters, never as silent corruption.
#include <gtest/gtest.h>

#include <vector>

#include "core/core.hpp"
#include "core/session.hpp"
#include "test_util.hpp"

namespace ae::core {
namespace {

using alib::Call;
using alib::PixelOp;

alib::Call segment_call() {
  alib::SegmentSpec spec;
  spec.seeds = {Point{10, 10}, Point{40, 20}};
  spec.luma_threshold = 20;
  return Call::make_segment(PixelOp::Copy, alib::Neighborhood::con8(), spec,
                            ChannelMask::y(),
                            ChannelMask::y().with(Channel::Alfa));
}

void expect_matches_software(const alib::CallResult& got, const Call& call,
                             const img::Image& a, const img::Image* b) {
  alib::SoftwareBackend sw;
  const alib::CallResult ref = sw.execute(call, a, b);
  test::expect_images_equal(ref.output, got.output, call.out_channels);
  EXPECT_EQ(ref.side.sad, got.side.sad);
  EXPECT_EQ(ref.side.histogram, got.side.histogram);
  EXPECT_EQ(ref.segments.size(), got.segments.size());
}

TEST(ResilientOptions, Validation) {
  ResilientOptions bad;
  bad.plan.dma_corrupt_rate = 1.5;
  EXPECT_THROW(ResilientSession({}, bad), InvalidArgument);
  bad = {};
  bad.transport.max_strip_retries = 0;
  EXPECT_THROW(ResilientSession({}, bad), InvalidArgument);
  bad = {};
  bad.backoff_factor = 0.5;
  EXPECT_THROW(ResilientSession({}, bad), InvalidArgument);
  bad = {};
  bad.breaker_threshold = 0;
  EXPECT_THROW(ResilientSession({}, bad), InvalidArgument);
}

TEST(Resilient, CleanPlanDelegatesAtZeroCost) {
  // With a clean plan the wrapper must not change results or timing: it
  // runs the same analytic fast path as a bare EngineSession.
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  ResilientSession res;
  EngineSession bare;
  for (const Call& call : test::representative_inter_calls()) {
    const alib::CallResult r = res.execute(call, a, &b);
    const alib::CallResult e = bare.execute(call, a, &b);
    test::expect_images_equal(e.output, r.output);
    EXPECT_EQ(e.stats.cycles, r.stats.cycles);
  }
  EXPECT_FALSE(res.injector().enabled());
  EXPECT_TRUE(res.healthy());
  EXPECT_EQ(res.stats().engine_calls, res.stats().calls);
  EXPECT_EQ(res.stats().fallback_calls, 0);
  EXPECT_EQ(res.stats().faults.total(), 0u);
  EXPECT_EQ(res.stats().cycles, bare.stats().cycles);
}

TEST(Resilient, DisabledInjectorKeepsSimulatorCyclesIdentical) {
  // A default-constructed (disabled) injector attached to the cycle
  // simulator must leave the cycle count bit-identical.
  const img::Image a = test::small_frame();
  const Call call =
      Call::make_intra(PixelOp::MorphGradient, alib::Neighborhood::con8());
  EngineRunStats plain;
  EngineRunStats attached;
  FaultInjector disabled;
  const alib::CallResult r1 = simulate_call({}, call, a, nullptr, &plain);
  const alib::CallResult r2 =
      simulate_call({}, call, a, nullptr, &attached, nullptr, &disabled);
  test::expect_images_equal(r1.output, r2.output);
  EXPECT_EQ(plain.cycles, attached.cycles);
  EXPECT_EQ(plain.interrupts, attached.interrupts);
  EXPECT_EQ(attached.strip_retries, 0u);
}

TEST(Resilient, SameSeedIsDeterministic) {
  const img::Image a = test::small_frame();
  const Call call =
      Call::make_intra(PixelOp::MorphGradient, alib::Neighborhood::con8());
  ResilientOptions options;
  options.plan.seed = 99;
  options.plan.dma_corrupt_rate = 1e-3;
  options.plan.zbt_flip_rate = 1e-3;
  ResilientSession first({}, options);
  ResilientSession second({}, options);
  for (int i = 0; i < 3; ++i) {
    const alib::CallResult r1 = first.execute(call, a);
    const alib::CallResult r2 = second.execute(call, a);
    EXPECT_EQ(r1.stats.cycles, r2.stats.cycles);
  }
  EXPECT_EQ(first.stats().faults.total(), second.stats().faults.total());
  EXPECT_EQ(first.stats().cycles, second.stats().cycles);
  EXPECT_GT(first.stats().faults.total(), 0u);
}

TEST(Resilient, ScriptedCorruptionIsDetectedAndRetried) {
  // One corrupted word in the very first strip: the strip CRC must catch
  // it, retransmit only that strip, and the result stays bit-exact.
  const img::Image a = test::small_frame();
  const Call call =
      Call::make_intra(PixelOp::Dilate, alib::Neighborhood::con4());
  ResilientOptions options;
  options.plan.script = {{FaultKind::DmaWordCorrupt, 0}};
  ResilientSession res({}, options);
  const alib::CallResult r = res.execute(call, a);
  expect_matches_software(r, call, a, nullptr);
  EXPECT_EQ(res.stats().faults.words_corrupted, 1u);
  EXPECT_EQ(res.stats().detections.strip_crc_mismatches, 1u);
  EXPECT_EQ(res.session().stats().strip_retries, 1u);
  EXPECT_EQ(res.stats().fallback_calls, 0);
  EXPECT_EQ(res.stats().call_retries, 0);
}

TEST(Resilient, ScriptedReadbackCorruptionIsReRead) {
  const img::Image a = test::small_frame();
  const Call call =
      Call::make_intra(PixelOp::Copy, alib::Neighborhood::con0());
  ResilientOptions options;
  options.plan.script = {{FaultKind::ReadbackCorrupt, 100}};
  ResilientSession res({}, options);
  const alib::CallResult r = res.execute(call, a);
  expect_matches_software(r, call, a, nullptr);
  EXPECT_EQ(res.stats().faults.readback_corrupted, 1u);
  EXPECT_EQ(res.stats().detections.readback_mismatches, 1u);
  EXPECT_EQ(res.session().stats().readback_retries, 1u);
}

TEST(Resilient, ResultBankFlipExhaustsReadsThenWholeCallRetrySucceeds) {
  // A bit flip inside a result bank is persistent: every re-read sees it
  // again, the readback budget exhausts, and only re-running the call
  // (fresh writes) clears it.  A 48x32 intra call stores 3072 input words
  // and 3072 result words (interleaved by the streaming overlap), so
  // opportunity 6100 is guaranteed to land in the result tail.
  const img::Image a = test::small_frame();
  const Call call =
      Call::make_intra(PixelOp::Copy, alib::Neighborhood::con0());
  ResilientOptions options;
  options.plan.script = {{FaultKind::ZbtBitFlip, 6100}};
  ResilientSession res({}, options);
  const alib::CallResult r = res.execute(call, a);
  expect_matches_software(r, call, a, nullptr);
  EXPECT_EQ(res.stats().faults.zbt_bits_flipped, 1u);
  EXPECT_EQ(res.stats().transport_failures, 1);
  EXPECT_EQ(res.stats().call_retries, 1);
  EXPECT_GT(res.stats().detections.readback_mismatches, 0u);
  EXPECT_GT(res.stats().engine_wasted_cycles, 0u);
  EXPECT_GT(res.stats().backoff_cycles, 0u);
  EXPECT_EQ(res.stats().fallback_calls, 0);
}

TEST(Resilient, LostInterruptTripsWatchdogThenRetrySucceeds) {
  const img::Image a = test::small_frame();
  const Call call =
      Call::make_intra(PixelOp::Erode, alib::Neighborhood::con4());
  ResilientOptions options;
  options.plan.script = {{FaultKind::LostInterrupt, 0}};
  ResilientSession res({}, options);
  const alib::CallResult r = res.execute(call, a);
  expect_matches_software(r, call, a, nullptr);
  EXPECT_EQ(res.stats().faults.interrupts_lost, 1u);
  EXPECT_EQ(res.stats().watchdog_trips, 1);
  EXPECT_EQ(res.stats().detections.watchdog_fires, 1u);
  EXPECT_EQ(res.stats().call_retries, 1);
  // The failed attempt is charged the full watchdog deadline.
  EXPECT_GE(res.stats().engine_wasted_cycles,
            res.options().transport.watchdog_deadline_cycles);
  EXPECT_GE(r.stats.cycles,
            res.options().transport.watchdog_deadline_cycles);
}

TEST(Resilient, BreakerOpensUnderPersistentFaultsAndRecovers) {
  const img::Image a = test::small_frame();
  const Call call =
      Call::make_intra(PixelOp::Copy, alib::Neighborhood::con0());
  ResilientOptions options;
  options.plan.interrupt_loss_rate = 1.0;  // the board is dead
  options.max_call_retries = 1;
  options.breaker_threshold = 2;
  options.breaker_cooldown_calls = 2;
  ResilientSession res({}, options);

  // Every engine attempt hangs; after `breaker_threshold` failed calls the
  // breaker opens.  Results still come back correct (software fallback).
  for (int i = 0; i < 2; ++i) {
    const alib::CallResult r = res.execute(call, a);
    expect_matches_software(r, call, a, nullptr);
  }
  EXPECT_EQ(res.breaker(), BreakerState::Open);
  EXPECT_EQ(res.stats().breaker_opens, 1);
  EXPECT_EQ(res.stats().fallback_calls, 2);
  EXPECT_FALSE(res.healthy());

  // While open, calls are served by software without touching the engine.
  const i64 attempts_before = res.stats().engine_attempts;
  res.execute(call, a);
  res.execute(call, a);
  EXPECT_EQ(res.stats().engine_attempts, attempts_before);
  EXPECT_EQ(res.stats().fallback_calls, 4);

  // The transport heals; the cooldown has elapsed, so the next call probes
  // the hardware (half-open) and closes the breaker again.
  res.injector().set_plan(FaultPlan{});
  const alib::CallResult healed = res.execute(call, a);
  expect_matches_software(healed, call, a, nullptr);
  EXPECT_EQ(res.breaker(), BreakerState::Closed);
  EXPECT_EQ(res.stats().fallback_calls, 4);
  EXPECT_GT(res.stats().engine_attempts, attempts_before);
}

TEST(Resilient, PropertySweepBitExactUnderRandomFaults) {
  // The headline property: for any seeded plan, every op in every
  // addressing mode comes back bit-exact with the software backend, and
  // injected faults are always detected somewhere.
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  alib::SoftwareBackend sw;
  for (const u64 seed : {11ull, 42ull}) {
    for (const double rate : {1e-4, 1e-3}) {
      ResilientOptions options;
      options.plan.seed = seed;
      options.plan.dma_corrupt_rate = rate;
      options.plan.dma_drop_rate = rate;
      options.plan.interrupt_loss_rate = rate;
      options.plan.zbt_flip_rate = rate;
      options.plan.readback_corrupt_rate = rate;
      ResilientSession res({}, options);
      SCOPED_TRACE("seed " + std::to_string(seed) + " rate " +
                   std::to_string(rate));
      for (const Call& call : test::representative_intra_calls()) {
        SCOPED_TRACE(call.describe());
        const alib::CallResult r = res.execute(call, a);
        const alib::CallResult ref = sw.execute(call, a);
        test::expect_images_equal(ref.output, r.output, call.out_channels);
        EXPECT_EQ(ref.side.sad, r.side.sad);
        EXPECT_EQ(ref.side.histogram, r.side.histogram);
      }
      for (const Call& call : test::representative_inter_calls()) {
        SCOPED_TRACE(call.describe());
        const alib::CallResult r = res.execute(call, a, &b);
        const alib::CallResult ref = sw.execute(call, a, &b);
        test::expect_images_equal(ref.output, r.output, call.out_channels);
        EXPECT_EQ(ref.side.sad, r.side.sad);
      }
      {
        const Call call = segment_call();
        const alib::CallResult r = res.execute(call, a);
        const alib::CallResult ref = sw.execute(call, a);
        test::expect_images_equal(ref.output, r.output, call.out_channels);
        EXPECT_EQ(ref.segments.size(), r.segments.size());
      }
      // Faults happened and none went unnoticed: anything injected must
      // have produced at least one detection event, and the final answers
      // above were bit-exact regardless.
      if (res.stats().faults.total() > 0) {
        EXPECT_GT(res.stats().detections.total(), 0u);
      }
      if (rate >= 1e-3) {
        EXPECT_GT(res.stats().faults.total(), 0u);
      }
      EXPECT_EQ(res.stats().calls,
                res.stats().engine_calls + res.stats().fallback_calls);
    }
  }
}

}  // namespace
}  // namespace ae::core
