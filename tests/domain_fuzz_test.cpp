// aedom calibration (tier2): the value-interval domain's soundness contract
// replayed over the full 520-program differential-fuzz corpus — the exact
// seeds and recipes of differential_fuzz_test.cpp's kernel sweep (8x40) and
// farm sweep (200 cases).  For every case, every pixel any backend
// materializes must lie inside the computed interval (zero escapes), a
// claimed-uniform channel must hold one value everywhere, and every
// clamp-free hint must leave the hinted kernel bit-exact against the
// always-clamping functional interpreter.
//
// Suites are prefixed DomainFuzz so tests/CMakeLists.txt and CI's deep-test
// job can select them (-R DomainFuzz under ASan).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "addresslib/functional.hpp"
#include "addresslib/kernels/kernel_backend.hpp"
#include "analysis/domain.hpp"
#include "analysis/optimizer.hpp"
#include "analysis/verifier.hpp"
#include "common/parallel.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using analysis::analyze_domain;
using analysis::CallProgram;
using analysis::ChannelInterval;
using analysis::FrameDomain;
using analysis::kNoFrame;
using analysis::ProgramDomain;

/// Every pixel of `out` must lie inside `d`, channel by channel; uniform
/// claims must hold exactly.  Counts escapes instead of aborting so one
/// corpus case reports every violated channel at once.
void expect_image_in_domain(const img::Image& out, const FrameDomain& d) {
  for (i32 y = 0; y < out.size().height; ++y) {
    for (i32 x = 0; x < out.size().width; ++x) {
      for (int ci = 0; ci < kChannelCount; ++ci) {
        const auto c = static_cast<Channel>(ci);
        const ChannelInterval& iv = d.of(c);
        const u16 v = out.at(x, y).get(c);
        ASSERT_TRUE(iv.contains(v))
            << to_string(c) << "=" << v << " escapes [" << iv.lo << ", "
            << iv.hi << "] at (" << x << ", " << y << ")";
        if (iv.uniform) {
          ASSERT_EQ(v, out.at(0, 0).get(c))
              << to_string(c) << " claimed uniform, differs at (" << x
              << ", " << y << ")";
        }
      }
    }
  }
}

/// One corpus case: wrap the call as a single-call program, analyze, run
/// the functional interpreter (ground truth), and check
///   (1) the output image never escapes its frame's interval,
///   (2) the clamp-free hinted call is bit-exact on the kernel backend.
void replay_domain_case(const Call& call, Size size, bool needs_b,
                        alib::KernelBackend& kernels, Rng& rng) {
  CallProgram program;
  const i32 fa = program.add_input(size, "a");
  const i32 fb = needs_b ? program.add_input(size, "b") : kNoFrame;
  program.mark_output(program.add_call(call, fa, fb));
  if (analysis::verify_program(program).has_errors()) return;

  const ProgramDomain domain = analyze_domain(program);
  const img::Image a = img::make_test_frame(size, rng.next_u64());
  const img::Image b = img::make_test_frame(size, rng.next_u64());

  const alib::CallResult ref =
      alib::execute_functional(call, a, needs_b ? &b : nullptr);
  expect_image_in_domain(
      ref.output,
      domain.frames[static_cast<std::size_t>(program.calls()[0].output)]);

  analysis::apply_domain_hints(program, domain);
  const Call hinted = program.calls()[0].call;
  test::expect_results_equal(
      ref, kernels.execute(hinted, a, needs_b ? &b : nullptr));
}

class DomainFuzzCorpus : public ::testing::TestWithParam<u64> {};

// The differential sweep half of the corpus: 8 seeds x 40 calls.
TEST_P(DomainFuzzCorpus, DifferentialCorpusNeverEscapesItsIntervals) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ull);
  par::ThreadPool pool(2);
  alib::KernelBackend kernels({&pool, 8});
  for (int i = 0; i < 40; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe());
    replay_domain_case(call, size, needs_b, kernels, rng);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainFuzzCorpus, ::testing::Range<u64>(1, 9));

// The farm-sweep half: 200 more cases complete the 520-program corpus.
TEST(DomainFuzzFarmCorpus, FarmCorpusNeverEscapesItsIntervals) {
  Rng rng(0xD1FFu);
  par::ThreadPool pool(2);
  alib::KernelBackend kernels({&pool, 8});
  for (int i = 0; i < 200; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe());
    replay_domain_case(call, size, needs_b, kernels, rng);
  }
}

// The corpus generator keeps segment luma thresholds below 81, so the
// flood-proof path (criterion proven vacuous) never triggers above; the
// adversarial flood cases cover it, including the all-pixels-seeded and
// label-barrier shapes.
TEST(DomainFuzzSegments, AdversarialFloodCasesStayInsideTheirIntervals) {
  for (const test::AdversarialFloodCase& fc :
       test::adversarial_flood_cases()) {
    SCOPED_TRACE(fc.name);
    CallProgram program;
    const i32 fa = program.add_input(fc.frame.size(), "a");
    program.mark_output(program.add_call(fc.call, fa));
    const ProgramDomain domain = analyze_domain(program);
    const alib::CallResult ref = alib::execute_functional(fc.call, fc.frame);
    expect_image_in_domain(
        ref.output,
        domain.frames[static_cast<std::size_t>(program.calls()[0].output)]);
    // The proven visit bracket, when one exists, must contain the real
    // traversal's visit count.
    const auto hints = analysis::domain_visit_hints(program, domain);
    if (!hints.empty() && hints[0].has_value()) {
      u64 visited = 0;
      for (const alib::SegmentInfo& s : ref.segments)
        visited += static_cast<u64>(s.pixel_count);
      EXPECT_GE(visited, hints[0]->lo) << fc.name;
      EXPECT_LE(visited, hints[0]->hi) << fc.name;
    }
  }
}

// Multi-call programs: the interval chain must stay sound through produced
// (non-top) frames, and the hinted program as a whole must stay bit-exact
// on the kernel backend.
TEST(DomainFuzzPrograms, FusionBiasedProgramsStaySoundAndBitExact) {
  par::ThreadPool pool(4);
  alib::KernelBackend raw_kernels({&pool, 4});
  for (u64 seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xAED0u);
    const CallProgram program = test::random_fusion_biased_program(rng);
    if (analysis::verify_program(program).has_errors()) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));

    std::vector<img::Image> inputs;
    for (const analysis::FrameDecl& decl : program.frames())
      if (decl.producer == kNoFrame)
        inputs.push_back(img::make_test_frame(decl.size, rng.next_u64()));

    class Adapter : public alib::Backend {
     public:
      explicit Adapter(alib::KernelBackend& k) : k_(k) {}
      std::string name() const override { return "kernels"; }
      alib::CallResult execute(const alib::Call& call, const img::Image& a,
                               const img::Image* b = nullptr) override {
        return k_.execute(call, a, b);
      }

     private:
      alib::KernelBackend& k_;
    } backend(raw_kernels);

    const analysis::ProgramRunResult ref =
        analysis::run_program(program, backend, inputs);

    // Soundness: every intermediate the run materialized is inside its
    // frame's interval.  run_program exposes declared outputs only, so the
    // check walks those (every frame is an output candidate in the
    // fusion-biased generator's tail).
    const ProgramDomain domain = analyze_domain(program);
    for (std::size_t o = 0; o < program.outputs().size(); ++o) {
      const i32 frame = program.outputs()[o];
      SCOPED_TRACE("output " + std::to_string(o));
      expect_image_in_domain(ref.outputs[o],
                             domain.frames[static_cast<std::size_t>(frame)]);
    }

    // Hinted program: stamping clamp-free proofs must not change one bit.
    CallProgram hinted = program;
    analysis::apply_domain_hints(hinted, domain);
    const analysis::ProgramRunResult out =
        analysis::run_program(hinted, backend, inputs);
    ASSERT_EQ(ref.outputs.size(), out.outputs.size());
    for (std::size_t o = 0; o < ref.outputs.size(); ++o)
      test::expect_images_equal(ref.outputs[o], out.outputs[o]);
  }
}

}  // namespace
}  // namespace ae
