// Pins the software cost model's arithmetic: the per-pixel instruction
// profiles and cycle formula that every Pentium-M second in the repo is
// derived from (Table 3, the profiler, the examples).
#include <gtest/gtest.h>

#include "addresslib/access_model.hpp"
#include "addresslib/cost_model.hpp"

namespace ae::alib {
namespace {

Call con8_call() {
  return Call::make_intra(PixelOp::MorphGradient, Neighborhood::con8());
}

TEST(CostModel, PerPixelProfileForCon8) {
  const SoftwareCostModel m;
  const InstructionProfile p = software_profile_per_pixel(con8_call(), m);
  // CON_8 Y->Y: 3 loads + 1 store = 4 accesses.
  EXPECT_EQ(p.memory, 4u);
  EXPECT_EQ(p.control, static_cast<u64>(m.control_instr_per_pixel));
  EXPECT_EQ(p.address_calc,
            4u * static_cast<u64>(m.addr_instr_per_access) +
                static_cast<u64>(m.addr_instr_per_scan_step));
  EXPECT_EQ(p.pixel_op,
            static_cast<u64>(op_datapath_cost(
                PixelOp::MorphGradient, Neighborhood::con8(),
                ChannelMask::y())));
}

TEST(CostModel, PerPixelProfileForInter) {
  const SoftwareCostModel m;
  const Call c = Call::make_inter(PixelOp::AbsDiff);
  const InstructionProfile p = software_profile_per_pixel(c, m);
  EXPECT_EQ(p.memory, 3u);  // 2 loads + 1 store
  EXPECT_EQ(p.address_calc,
            3u * static_cast<u64>(m.addr_instr_per_access) +
                static_cast<u64>(m.addr_instr_per_scan_step));
}

TEST(CostModel, CycleFormula) {
  const SoftwareCostModel m;
  InstructionProfile p;
  p.control = 10;
  p.address_calc = 20;
  p.pixel_op = 30;
  p.memory = 5;
  // cycles = total * cpi + memory * stall.
  EXPECT_DOUBLE_EQ(m.cycles(p),
                   65.0 * m.cpi +
                       5.0 * static_cast<double>(m.memory_stall_cycles));
  EXPECT_DOUBLE_EQ(m.seconds(p), m.cycles(p) / m.clock_hz);
}

TEST(CostModel, AddressShareDominatesForNeighborhoodOps) {
  // The defining property of the model (and of the XM it stands in for).
  const SoftwareCostModel m;
  const InstructionProfile p = software_profile_per_pixel(con8_call(), m);
  EXPECT_GT(static_cast<double>(p.address_calc) /
                static_cast<double>(p.total()),
            0.75);
}

TEST(CostModel, SideChannelReadsDoubleTheLoads) {
  const SoftwareCostModel m;
  OpParams params;
  params.threshold = 10;
  const Call c = Call::make_intra(
      PixelOp::Homogeneity, Neighborhood::con8(), ChannelMask::all(),
      ChannelMask::alfa().with(Channel::Aux), params);
  const InstructionProfile p = software_profile_per_pixel(c, m);
  // 3 entering pixels x 2 words + 2 channel stores = 8 accesses.
  EXPECT_EQ(p.memory, 8u);
}

TEST(CostModel, ScanDirectionChangesLoadCount) {
  const SoftwareCostModel m;
  OpParams fir;
  fir.coeffs.assign(9, 1);
  fir.shift = 3;
  Call c = Call::make_intra(PixelOp::Convolve, Neighborhood::vline(9),
                            ChannelMask::y(), ChannelMask::y(), fir);
  c.scan = ScanOrder::RowMajor;
  const u64 row_mem = software_profile_per_pixel(c, m).memory;
  c.scan = ScanOrder::ColumnMajor;
  const u64 col_mem = software_profile_per_pixel(c, m).memory;
  EXPECT_EQ(row_mem, 10u);  // 9 loads + 1 store
  EXPECT_EQ(col_mem, 2u);   // 1 load + 1 store
}

TEST(CostModel, CifCon8CallCostsTensOfMilliseconds) {
  // Sanity anchor for Table 3: one CON_8 call over CIF on the modeled
  // Pentium-M costs tens of milliseconds (the paper's ~36 ms/call average).
  const SoftwareCostModel m;
  const InstructionProfile per = software_profile_per_pixel(con8_call(), m);
  InstructionProfile total;
  constexpr u64 kCifPixels = 101376;
  total.control = per.control * kCifPixels;
  total.address_calc = per.address_calc * kCifPixels;
  total.pixel_op = per.pixel_op * kCifPixels;
  total.memory = per.memory * kCifPixels;
  const double seconds = m.seconds(total);
  EXPECT_GT(seconds, 0.02);
  EXPECT_LT(seconds, 0.12);
}

}  // namespace
}  // namespace ae::alib
