// Profiling tests: the CallRecorder decorator, the report arithmetic, and
// the paper's two profiling claims on the segmentation workload — address
// calculation dominates, and the Amdahl bound is around a factor of 30.
#include <gtest/gtest.h>

#include "profiling/profiler.hpp"
#include "segmentation/segmentation.hpp"
#include "image/synth.hpp"

namespace ae::prof {
namespace {

TEST(CallRecorder, AccumulatesAcrossCalls) {
  alib::SoftwareBackend inner;
  CallRecorder rec(inner);
  const img::Image a = img::make_test_frame(Size{32, 32}, 1);
  const img::Image b = img::make_test_frame(Size{32, 32}, 2);
  rec.execute(alib::Call::make_inter(alib::PixelOp::AbsDiff), a, &b);
  rec.execute(alib::Call::make_intra(alib::PixelOp::MorphGradient,
                                     alib::Neighborhood::con8()),
              a);
  EXPECT_EQ(rec.calls(), 2);
  EXPECT_EQ(rec.total().pixels, 2 * a.pixel_count());
  EXPECT_EQ(rec.by_kind().size(), 2u);
  EXPECT_EQ(rec.by_kind().at("inter/AbsDiff").calls, 1);
  rec.reset();
  EXPECT_EQ(rec.calls(), 0);
  EXPECT_TRUE(rec.by_kind().empty());
}

TEST(CallRecorder, TransparentToResults) {
  alib::SoftwareBackend inner;
  alib::SoftwareBackend reference;
  CallRecorder rec(inner);
  const img::Image a = img::make_test_frame(Size{24, 24}, 3);
  const alib::Call call = alib::Call::make_intra(
      alib::PixelOp::Erode, alib::Neighborhood::con4());
  EXPECT_EQ(rec.execute(call, a).output, reference.execute(call, a).output);
  EXPECT_NE(rec.name().find("+profile"), std::string::npos);
}

TEST(ProfileReport, ArithmeticIdentities) {
  ProfileReport r;
  r.low_level.address_calc = 60;
  r.low_level.pixel_op = 20;
  r.low_level.memory = 10;
  r.low_level.control = 5;
  r.high_level_instr = 5;
  EXPECT_EQ(r.total_instr(), 100u);
  EXPECT_DOUBLE_EQ(r.address_share(), 0.60);
  EXPECT_DOUBLE_EQ(r.accelerable_share(), 0.95);
  EXPECT_DOUBLE_EQ(r.max_speedup(), 20.0);
}

TEST(ProfileReport, EmptyReportIsSafe) {
  const ProfileReport r;
  EXPECT_EQ(r.total_instr(), 0u);
  EXPECT_EQ(r.address_share(), 0.0);
  EXPECT_EQ(r.max_speedup(), 0.0);
}

TEST(ProfileReport, SummaryMentionsKeyNumbers) {
  ProfileReport r;
  r.low_level.address_calc = 1000;
  r.high_level_instr = 100;
  r.addresslib_calls = 7;
  const std::string s = r.summary();
  EXPECT_NE(s.find("address share"), std::string::npos);
  EXPECT_NE(s.find("max speedup"), std::string::npos);
  EXPECT_NE(s.find("7 AddressLib calls"), std::string::npos);
}

// The paper's section-1 claim, reproduced on the segmentation workload.
class SpeedupBound : public ::testing::TestWithParam<u64> {};

TEST_P(SpeedupBound, AroundThirtyOnSegmentationWorkload) {
  alib::SoftwareBackend sw;
  CallRecorder rec(sw);
  const img::Image f = img::make_test_frame(img::formats::kQcif, GetParam());
  const seg::SegmentationResult r = seg::segment_image(rec, f);
  const ProfileReport report = make_report(rec, r.high_level_instr);
  // "the maximum achievable acceleration with AddressEngine is estimated
  // as a factor of 30" — land in the same band.
  EXPECT_GT(report.max_speedup(), 15.0) << report.summary();
  EXPECT_LT(report.max_speedup(), 60.0) << report.summary();
  // "pixel address calculations are the dominant operations".
  EXPECT_GT(report.address_share(), 0.75) << report.summary();
  EXPECT_GT(report.accelerable_share(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Frames, SpeedupBound, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace ae::prof
