// EngineSession (smart-driver what-if) tests: frame residency, side-only
// readback elision, and the invariant that only timing changes.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/session.hpp"
#include "test_util.hpp"

namespace ae::core {
namespace {

alib::Call gradpack() {
  return alib::Call::make_intra(
      alib::PixelOp::GradientPack, alib::Neighborhood::con8(),
      ChannelMask::y(), ChannelMask::alfa().with(Channel::Aux));
}

alib::Call gme_accum() {
  alib::OpParams p;
  p.threshold = 64;
  return alib::Call::make_inter(alib::PixelOp::GmeAccum, ChannelMask::y(),
                                ChannelMask::y(), p);
}

TEST(Session, SideOnlyOpsClassified) {
  EXPECT_TRUE(is_side_only_op(alib::PixelOp::Sad));
  EXPECT_TRUE(is_side_only_op(alib::PixelOp::Histogram));
  EXPECT_TRUE(is_side_only_op(alib::PixelOp::GmeAccumAffine));
  EXPECT_FALSE(is_side_only_op(alib::PixelOp::AbsDiff));
  EXPECT_FALSE(is_side_only_op(alib::PixelOp::Erode));
}

TEST(Session, FunctionalResultsUnchanged) {
  EngineSession session;
  EngineBackend plain({}, EngineMode::Analytic);
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  const alib::Call call = alib::Call::make_inter(alib::PixelOp::AbsDiff);
  test::expect_images_equal(session.execute(call, a, &b).output,
                            plain.execute(call, a, &b).output);
}

TEST(Session, RepeatedInputSkipsTransfer) {
  EngineSession session;
  const img::Image a = test::small_frame();
  const alib::Call call = alib::Call::make_intra(
      alib::PixelOp::MorphGradient, alib::Neighborhood::con8());
  const u64 first = session.execute(call, a).stats.cycles;
  const u64 second = session.execute(call, a).stats.cycles;
  EXPECT_LT(second, first);
  EXPECT_EQ(session.stats().inputs_transferred, 1);
  EXPECT_EQ(session.stats().inputs_reused, 1);
}

TEST(Session, ResultFeedsNextCallViaBoardCopy) {
  EngineSession session;
  const img::Image ref = test::small_frame(1);
  const img::Image warped = test::small_frame(2);
  // GradientPack produces packed; GmeAccum consumes it as frame B.
  const alib::CallResult packed = session.execute(gradpack(), warped);
  session.execute(gme_accum(), ref, &packed.output);
  EXPECT_EQ(session.stats().board_copies, 1);
  // warped + ref were transferred; packed was relocated on board.
  EXPECT_EQ(session.stats().inputs_transferred, 2);
  EXPECT_EQ(session.stats().inputs_reused, 1);
}

TEST(Session, SideOnlyReadbackElided) {
  EngineSession session;
  const img::Image a = test::small_frame(1);
  const img::Image b = test::small_frame(2);
  session.execute(gme_accum(), a, &b);
  EXPECT_EQ(session.stats().outputs_elided, 1);
  session.execute(alib::Call::make_inter(alib::PixelOp::AbsDiff), a, &b);
  EXPECT_EQ(session.stats().outputs_read_back, 1);
}

TEST(Session, OptionsDisableOptimizations) {
  SessionOptions off;
  off.reuse_resident_frames = false;
  off.skip_side_only_readback = false;
  EngineSession session({}, off);
  const img::Image a = test::small_frame();
  const alib::Call call = alib::Call::make_intra(
      alib::PixelOp::MorphGradient, alib::Neighborhood::con8());
  const u64 first = session.execute(call, a).stats.cycles;
  const u64 second = session.execute(call, a).stats.cycles;
  EXPECT_EQ(first, second);
  EXPECT_EQ(session.stats().inputs_reused, 0);
}

TEST(Session, InvalidateForgetsResidency) {
  EngineSession session;
  const img::Image a = test::small_frame();
  const alib::Call call = alib::Call::make_intra(
      alib::PixelOp::Erode, alib::Neighborhood::con4());
  session.execute(call, a);
  session.invalidate();
  session.execute(call, a);
  EXPECT_EQ(session.stats().inputs_transferred, 2);
  EXPECT_EQ(session.stats().inputs_reused, 0);
}

TEST(Session, GmeIterationTrafficShrinks) {
  // The canonical GME inner loop on the session vs. the plain driver: the
  // per-iteration board time must drop substantially.  CIF frames — on
  // tiny frames the per-call driver overhead dominates and residency
  // cannot help (that is itself part of the story).
  const img::Image ref = img::make_test_frame(img::formats::kCif, 1);
  EngineSession session;
  EngineBackend plain({}, EngineMode::Analytic);
  u64 session_cycles = 0;
  u64 plain_cycles = 0;
  for (int it = 0; it < 4; ++it) {
    const img::Image warped =
        img::make_test_frame(img::formats::kCif, 10 + static_cast<u64>(it));
    const alib::CallResult p1 = session.execute(gradpack(), warped);
    session_cycles += p1.stats.cycles;
    session_cycles += session.execute(gme_accum(), ref, &p1.output).stats.cycles;
    const alib::CallResult p2 = plain.execute(gradpack(), warped);
    plain_cycles += p2.stats.cycles;
    plain_cycles += plain.execute(gme_accum(), ref, &p2.output).stats.cycles;
  }
  EXPECT_LT(session_cycles, plain_cycles * 7 / 10);
}

TEST(Session, NameSaysSession) {
  EXPECT_NE(EngineSession().name().find("session"), std::string::npos);
}

}  // namespace
}  // namespace ae::core
