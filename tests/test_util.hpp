// Shared fixtures and helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "addresslib/addresslib.hpp"
#include "image/compare.hpp"
#include "image/synth.hpp"

namespace ae::test {

/// A small strip-compatible frame (height and width multiples of 16) that
/// keeps the cycle simulator fast.
inline img::Image small_frame(u64 seed = 1) {
  return img::make_test_frame(Size{48, 32}, seed);
}

/// A second frame of the same size with different content.
inline img::Image small_frame_b(u64 seed = 2) {
  return img::make_test_frame(Size{48, 32}, seed);
}

/// Asserts two images identical in the masked channels with a useful
/// message.
inline void expect_images_equal(const img::Image& a, const img::Image& b,
                                ChannelMask mask = ChannelMask::all()) {
  ASSERT_EQ(a.size(), b.size());
  const std::string diff = img::first_difference(a, b, mask);
  EXPECT_TRUE(diff.empty()) << "first difference at " << diff;
}

/// A representative set of intra calls covering every intra op.
std::vector<alib::Call> representative_intra_calls();

/// A representative set of inter calls covering every inter op.
std::vector<alib::Call> representative_inter_calls();

inline std::vector<alib::Call> representative_intra_calls() {
  using alib::Call;
  using alib::Neighborhood;
  using alib::OpParams;
  using alib::PixelOp;
  std::vector<Call> calls;
  calls.push_back(Call::make_intra(PixelOp::Copy, Neighborhood::con0()));
  {
    OpParams box;
    box.coeffs.assign(9, 1);
    box.shift = 3;  // sum of 9 ones >> 3 — deliberately not exact mean
    calls.push_back(Call::make_intra(PixelOp::Convolve, Neighborhood::con8(),
                                     ChannelMask::y(), ChannelMask::y(), box));
  }
  calls.push_back(
      Call::make_intra(PixelOp::GradientX, Neighborhood::con8()));
  calls.push_back(
      Call::make_intra(PixelOp::GradientY, Neighborhood::con8()));
  calls.push_back(
      Call::make_intra(PixelOp::GradientMag, Neighborhood::con8()));
  calls.push_back(
      Call::make_intra(PixelOp::MorphGradient, Neighborhood::con8()));
  calls.push_back(Call::make_intra(PixelOp::Erode, Neighborhood::con4()));
  calls.push_back(Call::make_intra(PixelOp::Dilate, Neighborhood::con4()));
  calls.push_back(Call::make_intra(PixelOp::Median, Neighborhood::con8()));
  {
    OpParams p;
    p.threshold = 128;
    calls.push_back(Call::make_intra(PixelOp::Threshold, Neighborhood::con0(),
                                     ChannelMask::y(), ChannelMask::y(), p));
  }
  {
    OpParams p;
    p.scale_num = 3;
    p.shift = 1;
    p.bias = 10;
    calls.push_back(Call::make_intra(PixelOp::Scale, Neighborhood::con0(),
                                     ChannelMask::y(), ChannelMask::y(), p));
  }
  {
    OpParams p;
    p.threshold = 24;
    calls.push_back(Call::make_intra(
        PixelOp::Homogeneity, Neighborhood::con8(), ChannelMask::yuv(),
        ChannelMask{ChannelMask::alfa().bits() | ChannelMask::aux().bits()},
        p));
  }
  calls.push_back(Call::make_intra(PixelOp::Histogram, Neighborhood::con0()));
  {
    OpParams p;
    p.table.resize(256);
    for (std::size_t i = 0; i < p.table.size(); ++i)
      p.table[i] = static_cast<u16>(255 - i);
    calls.push_back(Call::make_intra(PixelOp::TableLookup,
                                     Neighborhood::con0(),
                                     ChannelMask::alfa(), ChannelMask::alfa(),
                                     p));
  }
  // A worst-case perpendicular neighborhood (paper fig. 4).
  {
    OpParams fir;
    fir.coeffs = {1, 2, 4, 6, 8, 6, 4, 2, 1};
    fir.shift = 5;
    calls.push_back(Call::make_intra(PixelOp::Convolve, Neighborhood::vline(9),
                                     ChannelMask::y(), ChannelMask::y(), fir));
  }
  // Multi-channel variant (Table 2 row 4 shape).
  calls.push_back(Call::make_intra(PixelOp::MorphGradient,
                                   Neighborhood::con8(), ChannelMask::yuv(),
                                   ChannelMask::yuv()));
  return calls;
}

inline std::vector<alib::Call> representative_inter_calls() {
  using alib::Call;
  using alib::OpParams;
  using alib::PixelOp;
  std::vector<Call> calls;
  calls.push_back(Call::make_inter(PixelOp::Copy));
  calls.push_back(Call::make_inter(PixelOp::Add));
  calls.push_back(Call::make_inter(PixelOp::Sub));
  calls.push_back(Call::make_inter(PixelOp::AbsDiff));
  {
    OpParams p;
    p.shift = 8;
    calls.push_back(Call::make_inter(PixelOp::Mult, ChannelMask::y(),
                                     ChannelMask::y(), p));
  }
  calls.push_back(Call::make_inter(PixelOp::Min));
  calls.push_back(Call::make_inter(PixelOp::Max));
  calls.push_back(Call::make_inter(PixelOp::Average));
  calls.push_back(Call::make_inter(PixelOp::Sad));
  {
    OpParams p;
    p.threshold = 16;
    calls.push_back(Call::make_inter(PixelOp::DiffMask, ChannelMask::y(),
                                     ChannelMask::y(), p));
  }
  calls.push_back(Call::make_inter(PixelOp::AbsDiff, ChannelMask::yuv(),
                                   ChannelMask::yuv()));
  calls.push_back(Call::make_inter(PixelOp::BitAnd));
  calls.push_back(Call::make_inter(PixelOp::BitOr));
  calls.push_back(Call::make_inter(PixelOp::BitXor));
  return calls;
}

}  // namespace ae::test
