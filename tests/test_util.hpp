// Shared fixtures and helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "addresslib/addresslib.hpp"
#include "analysis/program.hpp"
#include "common/rng.hpp"
#include "image/compare.hpp"
#include "image/synth.hpp"

namespace ae::test {

/// A small strip-compatible frame (height and width multiples of 16) that
/// keeps the cycle simulator fast.
inline img::Image small_frame(u64 seed = 1) {
  return img::make_test_frame(Size{48, 32}, seed);
}

/// A second frame of the same size with different content.
inline img::Image small_frame_b(u64 seed = 2) {
  return img::make_test_frame(Size{48, 32}, seed);
}

/// Asserts two images identical in the masked channels with a useful
/// message.
inline void expect_images_equal(const img::Image& a, const img::Image& b,
                                ChannelMask mask = ChannelMask::all()) {
  ASSERT_EQ(a.size(), b.size());
  const std::string diff = img::first_difference(a, b, mask);
  EXPECT_TRUE(diff.empty()) << "first difference at " << diff;
}

/// Asserts two call results bit-exact: output frame, every side-port
/// accumulator, and the segment-indexed table records.  The one assertion
/// every backend pair (software / engine sim / analytic / farm) must pass.
inline void expect_results_equal(const alib::CallResult& ref,
                                 const alib::CallResult& out,
                                 ChannelMask mask = ChannelMask::all()) {
  expect_images_equal(ref.output, out.output, mask);
  EXPECT_EQ(ref.side.sad, out.side.sad);
  EXPECT_EQ(ref.side.histogram, out.side.histogram);
  EXPECT_EQ(ref.side.gme, out.side.gme);
  EXPECT_EQ(ref.side.gme_affine, out.side.gme_affine);
  ASSERT_EQ(ref.segments.size(), out.segments.size());
  for (std::size_t i = 0; i < ref.segments.size(); ++i) {
    const alib::SegmentInfo& r = ref.segments[i];
    const alib::SegmentInfo& o = out.segments[i];
    EXPECT_EQ(r.id, o.id) << "segment " << i;
    EXPECT_EQ(r.pixel_count, o.pixel_count) << "segment " << i;
    EXPECT_EQ(r.geodesic_radius, o.geodesic_radius) << "segment " << i;
    EXPECT_EQ(r.sum_y, o.sum_y) << "segment " << i;
    EXPECT_TRUE(r.bbox == o.bbox) << "segment " << i << " bbox";
  }
}

/// A representative set of intra calls covering every intra op.
std::vector<alib::Call> representative_intra_calls();

/// A representative set of inter calls covering every inter op.
std::vector<alib::Call> representative_inter_calls();

inline std::vector<alib::Call> representative_intra_calls() {
  using alib::Call;
  using alib::Neighborhood;
  using alib::OpParams;
  using alib::PixelOp;
  std::vector<Call> calls;
  calls.push_back(Call::make_intra(PixelOp::Copy, Neighborhood::con0()));
  {
    OpParams box;
    box.coeffs.assign(9, 1);
    box.shift = 3;  // sum of 9 ones >> 3 — deliberately not exact mean
    calls.push_back(Call::make_intra(PixelOp::Convolve, Neighborhood::con8(),
                                     ChannelMask::y(), ChannelMask::y(), box));
  }
  calls.push_back(
      Call::make_intra(PixelOp::GradientX, Neighborhood::con8()));
  calls.push_back(
      Call::make_intra(PixelOp::GradientY, Neighborhood::con8()));
  calls.push_back(
      Call::make_intra(PixelOp::GradientMag, Neighborhood::con8()));
  calls.push_back(
      Call::make_intra(PixelOp::MorphGradient, Neighborhood::con8()));
  calls.push_back(Call::make_intra(PixelOp::Erode, Neighborhood::con4()));
  calls.push_back(Call::make_intra(PixelOp::Dilate, Neighborhood::con4()));
  calls.push_back(Call::make_intra(PixelOp::Median, Neighborhood::con8()));
  {
    OpParams p;
    p.threshold = 128;
    calls.push_back(Call::make_intra(PixelOp::Threshold, Neighborhood::con0(),
                                     ChannelMask::y(), ChannelMask::y(), p));
  }
  {
    OpParams p;
    p.scale_num = 3;
    p.shift = 1;
    p.bias = 10;
    calls.push_back(Call::make_intra(PixelOp::Scale, Neighborhood::con0(),
                                     ChannelMask::y(), ChannelMask::y(), p));
  }
  {
    OpParams p;
    p.threshold = 24;
    calls.push_back(Call::make_intra(
        PixelOp::Homogeneity, Neighborhood::con8(), ChannelMask::yuv(),
        ChannelMask{ChannelMask::alfa().bits() | ChannelMask::aux().bits()},
        p));
  }
  calls.push_back(Call::make_intra(PixelOp::Histogram, Neighborhood::con0()));
  {
    OpParams p;
    p.table.resize(256);
    for (std::size_t i = 0; i < p.table.size(); ++i)
      p.table[i] = static_cast<u16>(255 - i);
    calls.push_back(Call::make_intra(PixelOp::TableLookup,
                                     Neighborhood::con0(),
                                     ChannelMask::alfa(), ChannelMask::alfa(),
                                     p));
  }
  // A worst-case perpendicular neighborhood (paper fig. 4).
  {
    OpParams fir;
    fir.coeffs = {1, 2, 4, 6, 8, 6, 4, 2, 1};
    fir.shift = 5;
    calls.push_back(Call::make_intra(PixelOp::Convolve, Neighborhood::vline(9),
                                     ChannelMask::y(), ChannelMask::y(), fir));
  }
  // Multi-channel variant (Table 2 row 4 shape).
  calls.push_back(Call::make_intra(PixelOp::MorphGradient,
                                   Neighborhood::con8(), ChannelMask::yuv(),
                                   ChannelMask::yuv()));
  return calls;
}

inline std::vector<alib::Call> representative_inter_calls() {
  using alib::Call;
  using alib::OpParams;
  using alib::PixelOp;
  std::vector<Call> calls;
  calls.push_back(Call::make_inter(PixelOp::Copy));
  calls.push_back(Call::make_inter(PixelOp::Add));
  calls.push_back(Call::make_inter(PixelOp::Sub));
  calls.push_back(Call::make_inter(PixelOp::AbsDiff));
  {
    OpParams p;
    p.shift = 8;
    calls.push_back(Call::make_inter(PixelOp::Mult, ChannelMask::y(),
                                     ChannelMask::y(), p));
  }
  calls.push_back(Call::make_inter(PixelOp::Min));
  calls.push_back(Call::make_inter(PixelOp::Max));
  calls.push_back(Call::make_inter(PixelOp::Average));
  calls.push_back(Call::make_inter(PixelOp::Sad));
  {
    OpParams p;
    p.threshold = 16;
    calls.push_back(Call::make_inter(PixelOp::DiffMask, ChannelMask::y(),
                                     ChannelMask::y(), p));
  }
  calls.push_back(Call::make_inter(PixelOp::AbsDiff, ChannelMask::yuv(),
                                   ChannelMask::yuv()));
  calls.push_back(Call::make_inter(PixelOp::BitAnd));
  calls.push_back(Call::make_inter(PixelOp::BitOr));
  calls.push_back(Call::make_inter(PixelOp::BitXor));
  return calls;
}

// ---- seeded random-call generator -----------------------------------------
//
// One generator for every differential/fuzz test: builds random *valid*
// calls across all four addressing schemes of the paper — interframe,
// intraframe, segment-based, and segment-indexed (the side table of segment
// calls) — plus random frame sizes mixing strip-aligned and awkward shapes.
// Deterministic per seed.

/// Random odd value in [1, max_odd].
inline i32 random_odd(Rng& rng, i32 max_odd) {
  return 1 + 2 * rng.uniform(0, (max_odd - 1) / 2);
}

inline alib::Neighborhood random_neighborhood(Rng& rng) {
  using alib::Neighborhood;
  switch (rng.bounded(6)) {
    case 0:
      return Neighborhood::con0();
    case 1:
      return Neighborhood::con4();
    case 2:
      return Neighborhood::con8();
    case 3:
      return Neighborhood::vline(random_odd(rng, 9));
    case 4:
      return Neighborhood::hline(random_odd(rng, 9));
    default:
      return Neighborhood::rect(random_odd(rng, 5), random_odd(rng, 5));
  }
}

inline ChannelMask random_video_mask(Rng& rng) {
  switch (rng.bounded(3)) {
    case 0:
      return ChannelMask::y();
    case 1:
      return ChannelMask::yuv();
    default:
      return ChannelMask::y().with(Channel::U);
  }
}

/// Mix of strip-aligned and awkward frame sizes.
inline Size random_frame_size(Rng& rng) {
  static const Size sizes[] = {{48, 32}, {33, 17}, {64, 48},
                               {16, 16}, {21, 40}, {96, 16}};
  return sizes[rng.bounded(6)];
}

/// Builds a random *valid* streamed (inter/intra) call; sets whether it
/// needs a second frame.
inline alib::Call random_streamed_call(Rng& rng, bool& needs_b) {
  using alib::Call;
  using alib::Neighborhood;
  using alib::OpParams;
  using alib::PixelOp;
  needs_b = rng.chance(0.4);
  if (needs_b) {
    static const PixelOp inter_ops[] = {
        PixelOp::Copy,     PixelOp::Add,    PixelOp::Sub,
        PixelOp::AbsDiff,  PixelOp::Mult,   PixelOp::Min,
        PixelOp::Max,      PixelOp::Average, PixelOp::Sad,
        PixelOp::DiffMask, PixelOp::BitAnd, PixelOp::BitOr,
        PixelOp::BitXor};
    const PixelOp op = inter_ops[rng.bounded(13)];
    OpParams p;
    p.shift = op == PixelOp::Mult ? rng.uniform(4, 8) : 0;
    p.threshold = rng.uniform(0, 64);
    const ChannelMask mask = random_video_mask(rng);
    Call c = Call::make_inter(op, mask, mask, p);
    c.scan = rng.chance(0.5) ? alib::ScanOrder::RowMajor
                             : alib::ScanOrder::ColumnMajor;
    return c;
  }
  static const PixelOp intra_ops[] = {
      PixelOp::Copy,      PixelOp::Convolve, PixelOp::MorphGradient,
      PixelOp::Erode,     PixelOp::Dilate,   PixelOp::Median,
      PixelOp::Threshold, PixelOp::Scale,    PixelOp::Histogram};
  const PixelOp op = intra_ops[rng.bounded(9)];
  alib::Neighborhood nbhd =
      op == PixelOp::Convolve || op == PixelOp::Median ||
              op == PixelOp::Erode || op == PixelOp::Dilate ||
              op == PixelOp::MorphGradient
          ? random_neighborhood(rng)
          : Neighborhood::con0();
  OpParams p;
  if (op == PixelOp::Convolve) {
    p.coeffs.resize(nbhd.size());
    for (auto& c : p.coeffs) c = rng.uniform(-4, 4);
    p.shift = rng.uniform(0, 3);
    p.bias = rng.uniform(-20, 20);
  }
  if (op == PixelOp::Scale) {
    p.scale_num = rng.uniform(1, 5);
    p.shift = rng.uniform(0, 2);
    p.bias = rng.uniform(-30, 30);
  }
  p.threshold = rng.uniform(0, 255);
  const ChannelMask mask = random_video_mask(rng);
  Call c = Call::make_intra(op, std::move(nbhd), mask, mask, p);
  c.scan = rng.chance(0.5) ? alib::ScanOrder::RowMajor
                           : alib::ScanOrder::ColumnMajor;
  c.border = rng.chance(0.3) ? alib::BorderPolicy::Constant
                             : alib::BorderPolicy::Replicate;
  c.params.border_constant =
      img::Pixel::gray(static_cast<u8>(rng.bounded(256)));
  return c;
}

/// Builds a random valid segment call for a frame of `size`.  Always
/// exercises the segment-indexed side table (every segment call accumulates
/// per-segment records); luma/chroma criteria, connectivity, seed count,
/// incremental labeling and id bases all vary.
inline alib::Call random_segment_call(Rng& rng, Size size) {
  alib::SegmentSpec spec;
  const int seeds = 1 + static_cast<int>(rng.bounded(4));
  for (int s = 0; s < seeds; ++s)
    spec.seeds.push_back(
        {rng.uniform(0, size.width - 1), rng.uniform(0, size.height - 1)});
  spec.luma_threshold = rng.uniform(0, 80);
  if (rng.chance(0.4)) spec.chroma_threshold = rng.uniform(0, 60);
  spec.connectivity = rng.chance(0.5) ? alib::Connectivity::Four
                                      : alib::Connectivity::Eight;
  spec.id_base = static_cast<alib::SegmentId>(rng.bounded(64));
  return alib::Call::make_segment(
      alib::PixelOp::Copy, alib::Neighborhood::con0(), spec, ChannelMask::y(),
      ChannelMask::y().with(Channel::Alfa));
}

/// One random call across any of the four addressing schemes (~20% are
/// segment calls, the rest streamed).  Sets `needs_b` for inter calls.
inline alib::Call random_any_call(Rng& rng, Size size, bool& needs_b) {
  if (rng.chance(0.2)) {
    needs_b = false;
    return random_segment_call(rng, size);
  }
  return random_streamed_call(rng, needs_b);
}

// ---- adversarial flood masks ------------------------------------------------
//
// Frame content shaped to hit the segment traversal's structural worst
// cases instead of random noise: claim-tie storms, maximal geodesic depth,
// zero-expansion floods, label barriers.  Shared by the segment unit tests
// and the kernel-vs-functional differential suite.

/// Checkerboard: adjacent pixels alternate between two luma values.  Under
/// 8-connectivity each color class is one diagonally connected lattice, so
/// seeds of opposite color interleave their claims across the whole frame
/// — nearly every admission is a tie between diagonal parents.  Under
/// 4-connectivity every like-valued pixel is isolated.
inline img::Image checkerboard_frame(Size size, u8 lo = 16, u8 hi = 200) {
  img::Image f(size);
  for (i32 y = 0; y < size.height; ++y) {
    for (i32 x = 0; x < size.width; ++x) {
      img::Pixel& p = f.ref(x, y);
      p.y = ((x ^ y) & 1) != 0 ? hi : lo;
      p.u = 128;
      p.v = 128;
    }
  }
  return f;
}

/// Spiral corridor: a single one-pixel-wide passable path carved inward
/// from (0, 0), arms separated by walls the luma criterion cannot cross.
/// A flood from the corridor mouth runs with a frontier of ~1 pixel to a
/// geodesic depth far beyond the frame dimensions.  The walk carves one
/// connected path, so its pixel count (returned through `path_pixels`) is
/// exactly the segment the flood must recover.
inline img::Image spiral_frame(Size size, i32* path_pixels = nullptr,
                               u8 path = 200, u8 wall = 16) {
  img::Pixel wall_px;
  wall_px.y = wall;
  wall_px.u = 128;
  wall_px.v = 128;
  img::Image f(size, wall_px);
  const auto carved = [&](Point p) { return f.ref(p.x, p.y).y == path; };
  static constexpr Point kDirs[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  Point pos{0, 0};
  f.ref(0, 0).y = path;
  i32 count = 1;
  i32 dir = 0;
  i32 turns = 0;
  while (turns < 4) {
    const Point d = kDirs[dir];
    const Point n{pos.x + d.x, pos.y + d.y};
    const Point n2{pos.x + 2 * d.x, pos.y + 2 * d.y};
    // Advance while the next cell is free and the cell beyond it is not an
    // earlier arm — that keeps a one-pixel wall between windings.
    if (!f.contains(n) || carved(n) || (f.contains(n2) && carved(n2))) {
      dir = (dir + 1) & 3;
      ++turns;
      continue;
    }
    turns = 0;
    pos = n;
    f.ref(n.x, n.y).y = path;
    ++count;
  }
  if (path_pixels != nullptr) *path_pixels = count;
  return f;
}

/// Every pixel of `size` as a seed, in scan order: the flood claims the
/// whole frame at seed-admission time and expands nothing.
inline std::vector<Point> all_pixel_seeds(Size size) {
  std::vector<Point> seeds;
  seeds.reserve(static_cast<std::size_t>(size.width) *
                static_cast<std::size_t>(size.height));
  for (i32 y = 0; y < size.height; ++y)
    for (i32 x = 0; x < size.width; ++x) seeds.push_back({x, y});
  return seeds;
}

/// A named adversarial segment call plus the frame that triggers it.
struct AdversarialFloodCase {
  const char* name;
  img::Image frame;
  alib::Call call;
};

/// The adversarial corpus: checkerboard tie storms under both
/// connectivities, the spiral corridor, an all-seed frame (with a
/// duplicate seed), and a label-barrier flood with a blocked seed.
inline std::vector<AdversarialFloodCase> adversarial_flood_cases() {
  using alib::Call;
  using alib::Connectivity;
  using alib::Neighborhood;
  using alib::PixelOp;
  using alib::SegmentSpec;
  std::vector<AdversarialFloodCase> cases;
  const Size size{48, 32};
  const ChannelMask out = ChannelMask::y().with(Channel::Alfa);
  {
    // Two opposite-color seeds interleave two lattice segments; the median
    // op exercises the sorting-network per-visit path on every claim.
    SegmentSpec spec;
    spec.seeds = {{0, 0}, {1, 0}};
    spec.luma_threshold = 10;
    spec.connectivity = Connectivity::Eight;
    cases.push_back({"checkerboard_con8_ties", checkerboard_frame(size),
                     Call::make_segment(PixelOp::Median, Neighborhood::con8(),
                                        spec, ChannelMask::y(), out)});
  }
  {
    // Under 4-connectivity every like-valued pixel is isolated: each seed
    // yields a single-pixel segment.
    SegmentSpec spec;
    spec.seeds = {{0, 0}, {5, 7}, {47, 31}, {20, 0}};
    spec.luma_threshold = 10;
    spec.connectivity = Connectivity::Four;
    cases.push_back({"checkerboard_con4_single_pixels",
                     checkerboard_frame(size),
                     Call::make_segment(PixelOp::Copy, Neighborhood::con0(),
                                        spec, ChannelMask::y(), out)});
  }
  {
    // Corridor flood: deep geodesic distances, tiny frontier, and claimed
    // runs of length ~1 — the deferred-apply splitter's worst case.  The
    // 5x5 median makes most of the small frame border-handled.
    SegmentSpec spec;
    spec.seeds = {{0, 0}};
    spec.luma_threshold = 10;
    cases.push_back({"spiral_corridor", spiral_frame(size),
                     Call::make_segment(PixelOp::Median,
                                        Neighborhood::rect(5, 5), spec,
                                        ChannelMask::y(), out)});
  }
  {
    // Every pixel a seed (plus one duplicate, which must yield an empty
    // segment) under a vacuous criterion: zero expansions, maximal
    // seed-admission and table-write traffic.
    SegmentSpec spec;
    spec.seeds = all_pixel_seeds(size);
    spec.seeds.push_back({0, 0});
    spec.luma_threshold = 255;
    cases.push_back({"all_pixels_seeded",
                     img::make_test_frame(size, 0xADF5u),
                     Call::make_segment(PixelOp::Copy, Neighborhood::con0(),
                                        spec, ChannelMask::y(), out)});
  }
  {
    // Incremental labeling: a pre-labeled stripe walls off the left edge
    // and blocks one seed outright (empty segment); the other seed floods
    // the rest of its lattice around the barrier.
    img::Image frame = checkerboard_frame(size);
    for (i32 y = 0; y < size.height; ++y)
      for (i32 x = 8; x < 10; ++x) frame.ref(x, y).alfa = 7;
    SegmentSpec spec;
    spec.seeds = {{8, 4}, {20, 10}};
    spec.luma_threshold = 10;
    spec.respect_existing_labels = true;
    spec.id_base = 7;
    cases.push_back({"label_barrier", std::move(frame),
                     Call::make_segment(PixelOp::Median, Neighborhood::con8(),
                                        spec, ChannelMask::y(), out)});
  }
  return cases;
}

// ---- fusion-biased program generator ---------------------------------------
//
// Multi-call CallPrograms whose dataflow is biased toward chains of
// pointwise (CON_0 intra) calls over shared frames — the shapes the aeopt
// fuse rewrite (analysis::optimize_program) targets — while still mixing in
// wide-neighborhood producers, inter calls, segment calls, dead results and
// host-collected intermediates so the optimizer's refusal paths run too.
// Deterministic per seed; every generated program passes aeverify clean.

/// Random pointwise (CON_0 intra) call: the consumer shapes fusion can
/// absorb as fused stages.  Histogram is included deliberately — it is
/// fusable (a CON_0 intra op) but makes the producing call ineligible for
/// dead-store elimination afterwards.
inline alib::Call random_pointwise_call(Rng& rng) {
  using alib::Call;
  using alib::Neighborhood;
  using alib::OpParams;
  using alib::PixelOp;
  static const PixelOp ops[] = {PixelOp::Copy, PixelOp::Threshold,
                                PixelOp::Scale, PixelOp::Histogram};
  const PixelOp op = ops[rng.bounded(4)];
  OpParams p;
  p.threshold = rng.uniform(0, 255);
  if (op == PixelOp::Scale) {
    p.scale_num = rng.uniform(1, 5);
    p.shift = rng.uniform(0, 2);
    p.bias = rng.uniform(-30, 30);
  }
  const ChannelMask mask = random_video_mask(rng);
  return Call::make_intra(op, Neighborhood::con0(), mask, mask, p);
}

/// A random verifier-clean program of 2..max_calls calls over one frame
/// size, ~2/3 of whose calls extend a pointwise chain off the previous
/// result.  Occasionally marks a mid-chain result as a program output —
/// a frame the fuse rewrite must then refuse to absorb.
inline analysis::CallProgram random_fusion_biased_program(Rng& rng,
                                                          int max_calls = 8) {
  analysis::CallProgram program;
  const Size size = random_frame_size(rng);
  std::vector<i32> frames;
  frames.push_back(program.add_input(size, "a"));
  if (rng.chance(0.5)) frames.push_back(program.add_input(size, "b"));
  const int n = 2 + static_cast<int>(rng.bounded(
                        static_cast<u32>(max_calls > 2 ? max_calls - 1 : 1)));
  i32 prev = frames.front();
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.65)) {
      prev = program.add_call(random_pointwise_call(rng), prev);
    } else {
      bool needs_b = false;
      alib::Call call = random_any_call(rng, size, needs_b);
      const i32 a = frames[rng.bounded(static_cast<u32>(frames.size()))];
      i32 b = analysis::kNoFrame;
      if (needs_b) {
        if (frames.size() < 2) {
          call = random_pointwise_call(rng);  // no distinct second frame yet
        } else {
          do {
            b = frames[rng.bounded(static_cast<u32>(frames.size()))];
          } while (b == a);  // same-frame inter pairs are AEV210 errors
        }
      }
      prev = program.add_call(std::move(call), a, b);
    }
    frames.push_back(prev);
  }
  program.mark_output(prev);
  // Occasionally the host also collects a mid-chain result, breaking that
  // link's fusability (program outputs are observable).
  if (rng.chance(0.3) && frames.size() > 3)
    program.mark_output(
        frames[1 + rng.bounded(static_cast<u32>(frames.size()) - 2)]);
  return program;
}

// ---- seeded known-bad call generator ---------------------------------------
//
// The flip side of random_any_call: deliberately ill-formed calls, each
// tagged with the aeverify rule the static verifier must flag as an error.
// Every case is also rejected dynamically — by validate_call, by the
// engine's validate_frame, or by segment-id exhaustion mid-expansion — so
// the differential suite can assert the static pass strictly pre-empts the
// dynamic failures.

struct BadCall {
  alib::Call call;
  Size size{48, 32};         ///< first input frame size
  Size size_b{48, 32};       ///< second input frame size (when passed)
  bool pass_b = false;       ///< hand the backend a second frame
  const char* rule_id = "";  ///< rule aeverify must report as an error
  const char* what = "";     ///< case label for SCOPED_TRACE
};

/// One ill-formed call per covered rule (seeded parameter jitter keeps the
/// exact offending values varying across seeds while every case stays in
/// its rule class).
inline std::vector<BadCall> known_bad_calls(Rng& rng) {
  using alib::Call;
  using alib::Neighborhood;
  using alib::OpParams;
  using alib::PixelOp;
  std::vector<BadCall> cases;

  {  // Inter-only op forced through intra addressing.
    BadCall c;
    c.call = Call::make_intra(PixelOp::AbsDiff, Neighborhood::con0());
    c.rule_id = "AEV100";
    c.what = "intra call with an inter-only op";
    cases.push_back(std::move(c));
  }
  {  // Segment expansion over an op outside the intra set.
    BadCall c;
    alib::SegmentSpec spec;
    spec.seeds.push_back({rng.uniform(0, 47), rng.uniform(0, 31)});
    spec.luma_threshold = rng.uniform(0, 40);
    c.call = Call::make_segment(PixelOp::Add, Neighborhood::con0(), spec,
                                ChannelMask::y(),
                                ChannelMask::y().with(Channel::Alfa));
    c.rule_id = "AEV100";
    c.what = "segment call with an inter-only op";
    cases.push_back(std::move(c));
  }
  {  // Inter call starved of its second frame.
    BadCall c;
    c.call = Call::make_inter(PixelOp::Add);
    c.pass_b = false;
    c.rule_id = "AEV101";
    c.what = "inter call without a second frame";
    cases.push_back(std::move(c));
  }
  {  // Mismatched bank pairs.
    BadCall c;
    c.call = Call::make_inter(PixelOp::AbsDiff);
    c.pass_b = true;
    c.size_b = Size{33, 17};
    c.rule_id = "AEV102";
    c.what = "inter call with differently sized frames";
    cases.push_back(std::move(c));
  }
  {  // Homogeneity needs the Alfa+Aux output planes.
    BadCall c;
    OpParams p;
    p.threshold = rng.uniform(1, 64);
    c.call = Call::make_intra(PixelOp::Homogeneity, Neighborhood::con8(),
                              ChannelMask::yuv(), ChannelMask::y(), p);
    c.rule_id = "AEV103";
    c.what = "Homogeneity without the Alfa/Aux output mask";
    cases.push_back(std::move(c));
  }
  {  // Convolve coefficient arity off the neighborhood size.
    BadCall c;
    OpParams p;
    p.coeffs.assign(3, rng.uniform(-4, 4));
    c.call = Call::make_intra(PixelOp::Convolve, Neighborhood::con8(),
                              ChannelMask::y(), ChannelMask::y(), p);
    c.rule_id = "AEV104";
    c.what = "Convolve with 3 coefficients on CON_8";
    cases.push_back(std::move(c));
  }
  {  // Shift outside the 5-bit barrel-shifter range.
    BadCall c;
    OpParams p;
    p.shift = 32 + static_cast<i32>(rng.bounded(8));
    c.call = Call::make_inter(PixelOp::Mult, ChannelMask::y(),
                              ChannelMask::y(), p);
    c.pass_b = true;
    c.rule_id = "AEV104";
    c.what = "shift beyond the barrel shifter";
    cases.push_back(std::move(c));
  }
  {  // Frame wider than the engine's line-buffer sizing.
    BadCall c;
    c.call = Call::make_intra(PixelOp::Copy, Neighborhood::con0());
    c.size = Size{480, 320};
    c.rule_id = "AEV108";
    c.what = "frame exceeds the line-buffer sizing";
    cases.push_back(std::move(c));
  }
  {  // Seed outside the frame.
    BadCall c;
    c.call = random_segment_call(rng, Size{48, 32});
    c.call.segment.seeds[0] = Point{48 + rng.uniform(1, 20), 5};
    c.rule_id = "AEV109";
    c.what = "segment seed outside the frame";
    cases.push_back(std::move(c));
  }
  {  // Negative luma threshold.
    BadCall c;
    c.call = random_segment_call(rng, Size{48, 32});
    c.call.segment.luma_threshold = -rng.uniform(1, 50);
    c.rule_id = "AEV109";
    c.what = "negative segment luma threshold";
    cases.push_back(std::move(c));
  }
  {  // Seeds that can run the 16-bit id space over the top.
    BadCall c;
    alib::SegmentSpec spec;
    spec.seeds = {{0, 0}, {47, 0}, {0, 31}, {47, 31}};
    spec.luma_threshold = 0;  // random content: every seed labels on its own
    spec.id_base = static_cast<alib::SegmentId>(0xFFFD);
    c.call = Call::make_segment(PixelOp::Copy, Neighborhood::con0(), spec,
                                ChannelMask::y(),
                                ChannelMask::y().with(Channel::Alfa));
    c.rule_id = "AEV110";
    c.what = "segment id allocation past the 16-bit table";
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace ae::test
