// Segment addressing tests: geodesic expansion semantics, determinism,
// criterion behaviour, incremental labeling and the segment-indexed table.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "addresslib/segment.hpp"
#include "image/synth.hpp"
#include "test_util.hpp"

namespace ae::alib {
namespace {

/// Flat gray frame: a single seed must flood everything in geodesic order.
TEST(SegmentExpansion, FloodsHomogeneousImage) {
  const img::Image a(Size{16, 12}, img::Pixel::gray(100));
  SegmentSpec spec;
  spec.seeds = {{3, 4}};
  SegmentTable<SegmentInfo> table;
  std::vector<SegmentVisit> visits;
  const SegmentTraversalStats stats = expand_segments(
      a, spec, table, [&](const SegmentVisit& v) { visits.push_back(v); });
  EXPECT_EQ(stats.processed_pixels, a.pixel_count());
  EXPECT_EQ(table.records()[0].pixel_count, a.pixel_count());
  EXPECT_EQ(table.records()[0].bbox, a.bounds());
}

TEST(SegmentExpansion, GeodesicOrderIsChebyshevOnHomogeneous) {
  // On an unobstructed 8-connected expansion the geodesic distance equals
  // the Chebyshev distance to the seed.
  const img::Image a(Size{15, 15}, img::Pixel::gray(50));
  SegmentSpec spec;
  spec.seeds = {{7, 7}};
  SegmentTable<SegmentInfo> table;
  expand_segments(a, spec, table, [&](const SegmentVisit& v) {
    EXPECT_EQ(v.geodesic_distance, chebyshev(v.position, Point{7, 7}));
  });
}

TEST(SegmentExpansion, FourConnectedUsesManhattan) {
  const img::Image a(Size{11, 11}, img::Pixel::gray(50));
  SegmentSpec spec;
  spec.seeds = {{5, 5}};
  spec.connectivity = Connectivity::Four;
  SegmentTable<SegmentInfo> table;
  expand_segments(a, spec, table, [&](const SegmentVisit& v) {
    EXPECT_EQ(v.geodesic_distance, manhattan(v.position, Point{5, 5}));
  });
}

TEST(SegmentExpansion, VisitsAreMonotoneInDistance) {
  const img::Image a = img::make_test_frame(Size{24, 24}, 3);
  SegmentSpec spec;
  spec.seeds = {{12, 12}};
  spec.luma_threshold = 255;
  SegmentTable<SegmentInfo> table;
  i32 last = 0;
  expand_segments(a, spec, table, [&](const SegmentVisit& v) {
    EXPECT_GE(v.geodesic_distance, last);
    last = v.geodesic_distance;
  });
}

TEST(SegmentExpansion, ThresholdStopsAtEdges) {
  // Left half 10, right half 200: a seed on the left must not cross.
  img::Image a(Size{16, 8}, img::Pixel::gray(10));
  img::draw_rect(a, Rect{8, 0, 8, 8}, img::Pixel::gray(200));
  SegmentSpec spec;
  spec.seeds = {{2, 2}};
  spec.luma_threshold = 20;
  SegmentTable<SegmentInfo> table;
  expand_segments(a, spec, table, [&](const SegmentVisit& v) {
    EXPECT_LT(v.position.x, 8);
  });
  EXPECT_EQ(table.records()[0].pixel_count, 64);
}

TEST(SegmentExpansion, LocalCriterionFollowsGradients) {
  // A smooth ramp: each step differs by 2, so threshold 2 crosses the whole
  // ramp even though endpoints differ by far more (the criterion is local).
  img::Image a(Size{100, 1});
  for (i32 x = 0; x < 100; ++x)
    a.at(x, 0).y = static_cast<u8>(2 * x);
  SegmentSpec spec;
  spec.seeds = {{0, 0}};
  spec.luma_threshold = 2;
  SegmentTable<SegmentInfo> table;
  expand_segments(a, spec, table, [](const SegmentVisit&) {});
  EXPECT_EQ(table.records()[0].pixel_count, 100);
}

TEST(SegmentExpansion, EveryPixelClaimedOnce) {
  const img::Image a = img::make_test_frame(Size{32, 32}, 9);
  SegmentSpec spec;
  spec.seeds = {{4, 4}, {20, 20}, {30, 4}};
  spec.luma_threshold = 255;
  SegmentTable<SegmentInfo> table;
  std::map<std::pair<i32, i32>, int> seen;
  expand_segments(a, spec, table, [&](const SegmentVisit& v) {
    ++seen[{v.position.x, v.position.y}];
  });
  for (const auto& [pos, count] : seen) EXPECT_EQ(count, 1);
  i64 total = 0;
  for (const auto& rec : table.records()) total += rec.pixel_count;
  EXPECT_EQ(total, a.pixel_count());
}

TEST(SegmentExpansion, DeterministicTieBreak) {
  const img::Image a = img::make_test_frame(Size{24, 24}, 5);
  SegmentSpec spec;
  spec.seeds = {{6, 6}, {18, 18}};
  spec.luma_threshold = 40;
  std::vector<SegmentInfo> first;
  std::vector<SegmentInfo> second;
  const img::Image l1 = label_segments(a, spec, &first);
  const img::Image l2 = label_segments(a, spec, &second);
  EXPECT_EQ(l1, l2);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i].pixel_count, second[i].pixel_count);
}

TEST(SegmentExpansion, SeedOnClaimedPixelYieldsEmptySegment) {
  const img::Image a(Size{8, 8}, img::Pixel::gray(10));
  SegmentSpec spec;
  spec.seeds = {{4, 4}, {4, 4}};  // duplicate seed
  SegmentTable<SegmentInfo> table;
  expand_segments(a, spec, table, [](const SegmentVisit&) {});
  EXPECT_EQ(table.records()[0].pixel_count, 64);
  EXPECT_EQ(table.records()[1].pixel_count, 0);
}

TEST(SegmentExpansion, RespectExistingLabelsActsAsBarrier) {
  img::Image a(Size{16, 4}, img::Pixel::gray(10));
  // A labeled vertical wall at x == 8.
  for (i32 y = 0; y < 4; ++y) a.at(8, y).alfa = 42;
  SegmentSpec spec;
  spec.seeds = {{2, 2}};
  spec.luma_threshold = 255;
  spec.respect_existing_labels = true;
  SegmentTable<SegmentInfo> table;
  expand_segments(a, spec, table, [&](const SegmentVisit& v) {
    EXPECT_LT(v.position.x, 8);
  });
  EXPECT_EQ(table.records()[0].pixel_count, 8 * 4);
}

TEST(SegmentExpansion, IdBaseOffsetsIds) {
  const img::Image a(Size{8, 8}, img::Pixel::gray(10));
  SegmentSpec spec;
  spec.seeds = {{1, 1}};
  spec.id_base = 100;
  SegmentTable<SegmentInfo> table;
  expand_segments(a, spec, table,
                  [&](const SegmentVisit& v) { EXPECT_EQ(v.segment, 101); });
  EXPECT_EQ(table.records()[0].id, 101);
}

TEST(SegmentExpansion, PathConnectivityProperty) {
  // Every pixel in a segment is reachable from the seed by steps whose luma
  // difference never exceeds the threshold: verify via re-expansion from
  // the claimed map itself (a pixel's distance-1 ancestor must exist).
  const img::Image a = img::make_test_frame(Size{32, 32}, 11);
  SegmentSpec spec;
  spec.seeds = {{16, 16}};
  spec.luma_threshold = 24;
  SegmentTable<SegmentInfo> table;
  std::map<std::pair<i32, i32>, i32> dist;
  expand_segments(a, spec, table, [&](const SegmentVisit& v) {
    dist[{v.position.x, v.position.y}] = v.geodesic_distance;
  });
  for (const auto& [pos, d] : dist) {
    if (d == 0) continue;
    bool has_closer_compatible_neighbor = false;
    for (const Point off : connectivity_offsets(Connectivity::Eight)) {
      const auto it = dist.find({pos.first + off.x, pos.second + off.y});
      if (it == dist.end() || it->second != d - 1) continue;
      const i32 a_y = a.at(pos.first, pos.second).y;
      const i32 b_y = a.at(pos.first + off.x, pos.second + off.y).y;
      if (std::abs(a_y - b_y) <= spec.luma_threshold) {
        has_closer_compatible_neighbor = true;
        break;
      }
    }
    EXPECT_TRUE(has_closer_compatible_neighbor)
        << "orphan pixel at (" << pos.first << "," << pos.second << ")";
  }
}

TEST(SegmentExpansion, LabelSegmentsPaintsAlfa) {
  const img::Image a(Size{8, 8}, img::Pixel::gray(10));
  SegmentSpec spec;
  spec.seeds = {{0, 0}};
  const img::Image labels = label_segments(a, spec);
  for (i32 y = 0; y < 8; ++y)
    for (i32 x = 0; x < 8; ++x) EXPECT_EQ(labels.at(x, y).alfa, 1);
}

TEST(SegmentExpansion, CriterionTestCountPlausible) {
  const img::Image a(Size{10, 10}, img::Pixel::gray(10));
  SegmentSpec spec;
  spec.seeds = {{5, 5}};
  SegmentTable<SegmentInfo> table;
  const SegmentTraversalStats stats =
      expand_segments(a, spec, table, [](const SegmentVisit&) {});
  // Each pixel tests at most its 8 neighbors, and unclaimed ones only once.
  EXPECT_GT(stats.criterion_tests, 0);
  EXPECT_LE(stats.criterion_tests, a.pixel_count() * 8);
}

TEST(SegmentExpansion, ChromaCriterionSplitsEqualLuma) {
  // Two halves with identical luma but different chroma: luma-only
  // expansion floods everything, the chroma criterion stops at the edge.
  img::Image a(Size{16, 8}, img::Pixel::gray(100));
  for (i32 y = 0; y < 8; ++y)
    for (i32 x = 8; x < 16; ++x) a.at(x, y).u = 200;

  SegmentSpec luma_only;
  luma_only.seeds = {{2, 4}};
  luma_only.luma_threshold = 10;
  SegmentTable<SegmentInfo> t1;
  expand_segments(a, luma_only, t1, [](const SegmentVisit&) {});
  EXPECT_EQ(t1.records()[0].pixel_count, 16 * 8);

  SegmentSpec with_chroma = luma_only;
  with_chroma.chroma_threshold = 16;
  SegmentTable<SegmentInfo> t2;
  expand_segments(a, with_chroma, t2, [&](const SegmentVisit& v) {
    EXPECT_LT(v.position.x, 8);
  });
  EXPECT_EQ(t2.records()[0].pixel_count, 8 * 8);
}

TEST(SegmentExpansion, ChromaCriterionIsLocal) {
  // A smooth chroma ramp passes a tight local chroma threshold end to end.
  img::Image a(Size{60, 1}, img::Pixel::gray(100));
  for (i32 x = 0; x < 60; ++x) a.at(x, 0).u = static_cast<u8>(60 + 2 * x);
  SegmentSpec spec;
  spec.seeds = {{0, 0}};
  spec.luma_threshold = 4;
  spec.chroma_threshold = 2;
  SegmentTable<SegmentInfo> table;
  expand_segments(a, spec, table, [](const SegmentVisit&) {});
  EXPECT_EQ(table.records()[0].pixel_count, 60);
}

TEST(SegmentTableTest, CountsReadsAndWrites) {
  SegmentTable<int> table;
  const SegmentId id = table.allocate(5);
  EXPECT_EQ(id, 1);
  EXPECT_EQ(table.read(id), 5);
  table.modify(id) = 7;
  EXPECT_EQ(table.read(id), 7);
  EXPECT_EQ(table.reads(), 2u);
  EXPECT_EQ(table.writes(), 2u);  // allocate + modify
}

TEST(SegmentTableTest, RejectsBadIds) {
  SegmentTable<int> table;
  EXPECT_THROW(table.read(1), InvalidArgument);
  table.allocate(1);
  EXPECT_THROW(table.read(2), InvalidArgument);
  EXPECT_THROW(table.modify(0), InvalidArgument);
}

TEST(SegmentExpansion, InputValidation) {
  const img::Image a(Size{4, 4}, img::Pixel::gray(1));
  SegmentTable<SegmentInfo> table;
  SegmentSpec no_seeds;
  EXPECT_THROW(
      expand_segments(a, no_seeds, table, [](const SegmentVisit&) {}),
      InvalidArgument);
  SegmentSpec bad_seed;
  bad_seed.seeds = {{9, 9}};
  EXPECT_THROW(
      expand_segments(a, bad_seed, table, [](const SegmentVisit&) {}),
      InvalidArgument);
}

// ---- adversarial flood masks (test_util.hpp) --------------------------------

TEST(SegmentExpansionAdversarial, CheckerboardConn8InterleavesTwoLattices) {
  // Two opposite-color seeds: each color class is one diagonally connected
  // lattice, so the two segments partition the whole frame and nearly every
  // admission races a diagonal tie.  The partition must be an exact split.
  const Size size{48, 32};
  const img::Image a = test::checkerboard_frame(size);
  SegmentSpec spec;
  spec.seeds = {{0, 0}, {1, 0}};
  spec.luma_threshold = 10;
  SegmentTable<SegmentInfo> table;
  const SegmentTraversalStats stats =
      expand_segments(a, spec, table, [](const SegmentVisit&) {});
  EXPECT_EQ(stats.processed_pixels, a.pixel_count());
  ASSERT_EQ(table.records().size(), 2u);
  EXPECT_EQ(table.records()[0].pixel_count, a.pixel_count() / 2);
  EXPECT_EQ(table.records()[1].pixel_count, a.pixel_count() / 2);
}

TEST(SegmentExpansionAdversarial, CheckerboardConn4IsolatesEverySeed) {
  const img::Image a = test::checkerboard_frame(Size{48, 32});
  SegmentSpec spec;
  spec.seeds = {{0, 0}, {5, 7}, {47, 31}, {20, 0}};
  spec.luma_threshold = 10;
  spec.connectivity = Connectivity::Four;
  SegmentTable<SegmentInfo> table;
  const SegmentTraversalStats stats =
      expand_segments(a, spec, table, [](const SegmentVisit&) {});
  EXPECT_EQ(stats.processed_pixels, 4);
  ASSERT_EQ(table.records().size(), 4u);
  for (const SegmentInfo& s : table.records()) {
    EXPECT_EQ(s.pixel_count, 1);
    EXPECT_EQ(s.geodesic_radius, 0);
  }
}

TEST(SegmentExpansionAdversarial, SpiralCorridorRecoveredAtFullDepth) {
  // The carve is one connected walk, so the flood must recover exactly the
  // carved pixels, and the corridor coils far deeper than any straight-line
  // crossing of the frame.
  const Size size{48, 32};
  i32 carved = 0;
  const img::Image a = test::spiral_frame(size, &carved);
  SegmentSpec spec;
  spec.seeds = {{0, 0}};
  spec.luma_threshold = 10;
  SegmentTable<SegmentInfo> table;
  const SegmentTraversalStats stats =
      expand_segments(a, spec, table, [](const SegmentVisit&) {});
  EXPECT_EQ(stats.processed_pixels, carved);
  ASSERT_EQ(table.records().size(), 1u);
  EXPECT_EQ(table.records()[0].pixel_count, carved);
  EXPECT_GT(carved, a.pixel_count() / 3);
  EXPECT_GT(table.records()[0].geodesic_radius,
            std::max(size.width, size.height));
}

TEST(SegmentExpansionAdversarial, AllSeedFloodExpandsNothing) {
  // Every pixel is claimed at seed-admission time: zero criterion tests,
  // and the duplicate trailing seed yields an empty segment.  Table writes
  // stay at the pinned 2-per-seed (allocate + final record) plus 1 per
  // visit accounting.
  const Size size{24, 16};
  const img::Image a = img::make_test_frame(size, 0xADF5u);
  SegmentSpec spec;
  spec.seeds = test::all_pixel_seeds(size);
  spec.seeds.push_back({0, 0});
  spec.luma_threshold = 255;
  SegmentTable<SegmentInfo> table;
  const SegmentTraversalStats stats =
      expand_segments(a, spec, table, [](const SegmentVisit&) {});
  EXPECT_EQ(stats.processed_pixels, a.pixel_count());
  EXPECT_EQ(stats.criterion_tests, 0);
  EXPECT_EQ(stats.max_distance, 0);
  ASSERT_EQ(table.records().size(), spec.seeds.size());
  EXPECT_EQ(table.records().back().pixel_count, 0);
  EXPECT_EQ(table.writes(),
            2 * spec.seeds.size() +
                static_cast<std::size_t>(a.pixel_count()));
}

TEST(SegmentReachability, BoundsBracketExactTraversalOnAdversarialCorpus) {
  // The probe's contract (segment.hpp): pushed_seeds <= processed_pixels <=
  // reachable_pixels, criterion_tests <= reachable * connectivity, and
  // every visit falls inside the returned region.
  for (const test::AdversarialFloodCase& c : test::adversarial_flood_cases()) {
    SCOPED_TRACE(c.name);
    const SegmentSpec& spec = c.call.segment;
    const SegmentReachability reach =
        probe_segment_reachability(c.frame, spec);
    SegmentTable<SegmentInfo> table;
    bool all_inside = true;
    const SegmentTraversalStats stats =
        expand_segments(c.frame, spec, table, [&](const SegmentVisit& v) {
          all_inside = all_inside && reach.region.contains(v.position);
        });
    EXPECT_TRUE(all_inside);
    EXPECT_LE(reach.pushed_seeds, stats.processed_pixels);
    EXPECT_GE(reach.reachable_pixels, stats.processed_pixels);
    const i64 conn = spec.connectivity == Connectivity::Four ? 4 : 8;
    EXPECT_LE(stats.criterion_tests, reach.reachable_pixels * conn);
  }
}

}  // namespace
}  // namespace ae::alib
