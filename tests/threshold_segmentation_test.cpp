// Tests for the second (histogram-threshold) segmentation algorithm and
// Otsu's threshold selection.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/engine.hpp"
#include "segmentation/threshold_segmentation.hpp"
#include "image/synth.hpp"

namespace ae::seg {
namespace {

std::array<u64, 256> bimodal_histogram(int lo, int hi, u64 n) {
  std::array<u64, 256> h{};
  for (int d = -3; d <= 3; ++d) {
    h[static_cast<std::size_t>(lo + d)] += n;
    h[static_cast<std::size_t>(hi + d)] += n;
  }
  return h;
}

TEST(Otsu, BimodalSplitsBetweenModes) {
  const auto h = bimodal_histogram(50, 200, 100);
  const std::vector<i32> t = otsu_thresholds(h, 2);
  ASSERT_EQ(t.size(), 1u);
  // Any split strictly between the modes is optimal; the argmax picks the
  // first, which sits at the upper edge of the lower mode.
  EXPECT_GT(t[0], 52);
  EXPECT_LT(t[0], 197);
}

TEST(Otsu, TrimodalFindsTwoThresholds) {
  std::array<u64, 256> h{};
  for (int d = -2; d <= 2; ++d) {
    h[static_cast<std::size_t>(40 + d)] += 50;
    h[static_cast<std::size_t>(128 + d)] += 50;
    h[static_cast<std::size_t>(220 + d)] += 50;
  }
  const std::vector<i32> t = otsu_thresholds(h, 3);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_GT(t[0], 41);
  EXPECT_LT(t[0], 126);
  EXPECT_GT(t[1], 129);
  EXPECT_LT(t[1], 218);
}

TEST(Otsu, FourClassesSupported) {
  std::array<u64, 256> h{};
  for (int mode : {30, 90, 160, 230})
    h[static_cast<std::size_t>(mode)] = 100;
  const std::vector<i32> t = otsu_thresholds(h, 4);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_LT(t[0], t[1]);
  EXPECT_LT(t[1], t[2]);
}

TEST(Otsu, RejectsBadClassCounts) {
  std::array<u64, 256> h{};
  EXPECT_THROW(otsu_thresholds(h, 1), InvalidArgument);
  EXPECT_THROW(otsu_thresholds(h, 5), InvalidArgument);
}

img::Image two_tone() {
  img::Image f(Size{48, 32}, img::Pixel::gray(40));
  img::draw_rect(f, Rect{24, 0, 24, 32}, img::Pixel::gray(210));
  return f;
}

TEST(ThresholdSegmentation, TwoToneYieldsTwoComponents) {
  alib::SoftwareBackend be;
  ThresholdSegmentationParams params;
  params.classes = 2;
  const SegmentationResult r = threshold_segmentation(be, two_tone(), params);
  EXPECT_DOUBLE_EQ(label_coverage(r.labels), 1.0);
  ASSERT_EQ(r.segments.size(), 2u);
  EXPECT_NE(r.labels.at(4, 16).alfa, r.labels.at(44, 16).alfa);
  // Both halves are one component each (smoothing blurs only the border).
  EXPECT_GT(r.segments[0].pixel_count, 500);
  EXPECT_GT(r.segments[1].pixel_count, 500);
}

TEST(ThresholdSegmentation, SegmentsPartitionFrame) {
  alib::SoftwareBackend be;
  const img::Image f = img::make_test_frame(Size{64, 48}, 9);
  const SegmentationResult r = threshold_segmentation(be, f);
  i64 total = 0;
  std::set<alib::SegmentId> ids;
  for (const alib::SegmentInfo& s : r.segments) {
    EXPECT_GT(s.pixel_count, 0);
    EXPECT_TRUE(ids.insert(s.id).second);
    total += s.pixel_count;
  }
  EXPECT_EQ(total, f.pixel_count());
  for (const auto& px : r.labels.pixels()) EXPECT_TRUE(ids.count(px.alfa));
}

TEST(ThresholdSegmentation, SmallComponentsMerged) {
  alib::SoftwareBackend be;
  const img::Image f = img::make_test_frame(Size{64, 48}, 9);
  ThresholdSegmentationParams params;
  params.min_segment_pixels = 24;
  const SegmentationResult r = threshold_segmentation(be, f, params);
  i64 small = 0;
  for (const alib::SegmentInfo& s : r.segments)
    if (s.pixel_count < params.min_segment_pixels) ++small;
  // Only components with no mergeable neighbor may remain small.
  EXPECT_LT(small, static_cast<i64>(r.segments.size()) / 4 + 2);
  EXPECT_GT(r.merged_segments, 0);
}

TEST(ThresholdSegmentation, LabelsAreExactConnectedComponents) {
  // With merging disabled, the labeling must be exactly the connected
  // components of the class map: 4-adjacent pixels share a label iff they
  // share a class.  (The multi-seed expansion tiles components into cells;
  // the same-class union must reconstruct them exactly.)
  alib::SoftwareBackend be;
  const img::Image f = img::make_test_frame(Size{48, 40}, 21);
  ThresholdSegmentationParams params;
  params.min_segment_pixels = 1;  // no merging
  const SegmentationResult r = threshold_segmentation(be, f, params);

  // Every label must form one 8-connected region (a flood fill from any of
  // its pixels reaches all of them) — tiling residue would leave a label
  // split into disjoint islands.
  std::map<u16, std::set<std::pair<i32, i32>>> by_label;
  for (i32 y = 0; y < r.labels.height(); ++y)
    for (i32 x = 0; x < r.labels.width(); ++x)
      by_label[r.labels.at(x, y).alfa].insert({x, y});
  for (const auto& [label, pixels] : by_label) {
    // BFS from any pixel must reach all pixels of the label through
    // same-label 4/8-neighbors: i.e., each label is one connected region.
    std::set<std::pair<i32, i32>> seen;
    std::vector<std::pair<i32, i32>> queue{*pixels.begin()};
    seen.insert(queue[0]);
    while (!queue.empty()) {
      const auto [x, y] = queue.back();
      queue.pop_back();
      for (const Point off :
           alib::connectivity_offsets(alib::Connectivity::Eight)) {
        const std::pair<i32, i32> n{x + off.x, y + off.y};
        if (!pixels.count(n) || seen.count(n)) continue;
        seen.insert(n);
        queue.push_back(n);
      }
    }
    EXPECT_EQ(seen.size(), pixels.size()) << "label " << label
                                          << " is disconnected";
  }
}

TEST(ThresholdSegmentation, Deterministic) {
  alib::SoftwareBackend be;
  const img::Image f = img::make_test_frame(Size{48, 32}, 3);
  const SegmentationResult a = threshold_segmentation(be, f);
  const SegmentationResult b = threshold_segmentation(be, f);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.segments.size(), b.segments.size());
}

TEST(ThresholdSegmentation, RunsOnEngineBackendIdentically) {
  alib::SoftwareBackend sw;
  core::EngineBackend hw({}, core::EngineMode::Analytic);
  const img::Image f = img::make_test_frame(Size{48, 32}, 5);
  const SegmentationResult rs = threshold_segmentation(sw, f);
  const SegmentationResult rh = threshold_segmentation(hw, f);
  EXPECT_EQ(rs.labels, rh.labels);
}

TEST(ThresholdSegmentation, DiffersFromRegionGrowing) {
  // Two genuinely different algorithms — the SCHEMA "multiple segmentation
  // algorithms" requirement: the same frame yields different partitions.
  alib::SoftwareBackend be;
  const img::Image f = img::make_test_frame(Size{64, 48}, 9);
  const SegmentationResult grow = segment_image(be, f);
  const SegmentationResult thresh = threshold_segmentation(be, f);
  EXPECT_NE(grow.segments.size(), thresh.segments.size());
}

TEST(ThresholdSegmentation, CountsAddressLibWork) {
  alib::SoftwareBackend be;
  const SegmentationResult r =
      threshold_segmentation(be, img::make_test_frame(Size{48, 32}, 5));
  // smoothing + histogram + per-threshold (threshold/scale/add) + CC
  // rounds + relabel.
  EXPECT_GE(r.addresslib_calls, 8);
  EXPECT_GT(r.low_level.table_writes, 0u);
}

}  // namespace
}  // namespace ae::seg
