// Failure injection and configuration validation: every documented
// precondition of the engine must reject bad inputs with a typed error, and
// degraded-but-legal configurations must degrade gracefully, never corrupt.
#include <gtest/gtest.h>

#include "core/core.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::PixelOp;

TEST(ConfigValidation, RejectsBadClock) {
  core::EngineConfig c;
  c.clock_mhz = 0.0;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsOddBusWidth) {
  core::EngineConfig c;
  c.bus_width_bits = 48;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsBadEfficiency) {
  core::EngineConfig c;
  c.bus_efficiency = 0.0;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
  c.bus_efficiency = 1.5;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsTooFewBanks) {
  core::EngineConfig c;
  c.zbt_banks = 4;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsNonPowerOfTwoStrip) {
  core::EngineConfig c;
  c.strip_lines = 12;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsStripBelowNeighborhoodSpan) {
  // "The selected strip size is sixteen lines, as the maximum range of
  // input data required to process one pixel is nine lines."
  core::EngineConfig c;
  c.strip_lines = 8;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsShallowIim) {
  core::EngineConfig c;
  c.iim_lines = 4;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsWrongStageCount) {
  core::EngineConfig c;
  c.pipeline_stages = 5;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(FrameValidation, RejectsOversizedFrames) {
  core::EngineConfig c;
  EXPECT_THROW(core::validate_frame(c, Size{400, 288}), InvalidArgument);
  EXPECT_THROW(core::validate_frame(c, Size{0, 10}), InvalidArgument);
}

TEST(FrameValidation, RejectsFramesBeyondBankCapacity) {
  core::EngineConfig c;
  c.zbt_bank_bytes = 64 * 1024;
  c.max_line_pixels = 352;
  EXPECT_THROW(core::validate_frame(c, img::formats::kCif), InvalidArgument);
  EXPECT_NO_THROW(core::validate_frame(c, Size{96, 96}));
}

TEST(EngineBackendErrors, RejectsBadCalls) {
  core::EngineBackend be;
  const img::Image a = test::small_frame();
  // Inter without a second frame.
  EXPECT_THROW(be.execute(Call::make_inter(PixelOp::Add), a),
               InvalidArgument);
}

TEST(Degradation, AsymmetricNeighborhoodsWork) {
  // A window lying entirely above (or below) the center: the clamped line
  // window logic must still feed the matrix register correctly.
  const img::Image a = test::small_frame();
  alib::SoftwareBackend sw;
  core::EngineBackend hw;
  for (const Point off : {Point{0, -5}, Point{0, 4}, Point{-3, 0}}) {
    const Call call = Call::make_intra(
        PixelOp::Erode, alib::Neighborhood({off, Point{0, 0}}));
    SCOPED_TRACE(to_string(off));
    test::expect_images_equal(sw.execute(call, a).output,
                              hw.execute(call, a).output);
  }
}

TEST(EngineBackendErrors, OversizedFrameRejectedInBothModes) {
  const img::Image big(Size{300, 400});  // height > 352 buffer sizing
  for (const auto mode :
       {core::EngineMode::CycleAccurate, core::EngineMode::Analytic}) {
    core::EngineBackend be({}, mode);
    EXPECT_THROW(
        be.execute(Call::make_intra(PixelOp::Copy, alib::Neighborhood::con0()),
                   big),
        InvalidArgument)
        << to_string(mode);
  }
}

TEST(Degradation, MinimalIimStillCorrect) {
  // 9-line neighborhood through a 9-line IIM: maximum pressure, same bits.
  core::EngineConfig tight;
  tight.iim_lines = 9;
  tight.strip_lines = 16;
  alib::OpParams p;
  p.coeffs.assign(9, 1);
  p.shift = 3;
  const Call call = Call::make_intra(PixelOp::Convolve,
                                     alib::Neighborhood::vline(9),
                                     ChannelMask::y(), ChannelMask::y(), p);
  const img::Image a = test::small_frame();
  alib::SoftwareBackend sw;
  core::EngineBackend hw(tight);
  test::expect_images_equal(sw.execute(call, a).output,
                            hw.execute(call, a).output);
}

TEST(Degradation, TallNeighborhoodRejectedWhenIimTooSmall) {
  core::EngineConfig tight;
  tight.iim_lines = 9;
  // Inter mode halves the IIM: a 9-line window can't fit 4 lines per
  // frame... (inter uses CON_0 windows, so instead check intra rejection
  // with a halved custom config is not expressible — use vline on a
  // config whose IIM is 9 and neighborhood needing 9 works, but an
  // 11-line neighborhood is impossible to build at all.)
  EXPECT_THROW(alib::Neighborhood::vline(11), InvalidArgument);
}

TEST(Degradation, SlowBusOnlyChangesTiming) {
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  core::EngineConfig slow;
  slow.bus_efficiency = 0.3;
  slow.interrupt_overhead_cycles = 5000;
  core::EngineBackend fast_be;
  core::EngineBackend slow_be(slow);
  const Call call = Call::make_inter(PixelOp::Average);
  const alib::CallResult rf = fast_be.execute(call, a, &b);
  const alib::CallResult rs = slow_be.execute(call, a, &b);
  test::expect_images_equal(rf.output, rs.output);
  EXPECT_GT(rs.stats.cycles, rf.stats.cycles);
  EXPECT_EQ(rf.stats.loads, rs.stats.loads);  // traffic identical
}

TEST(Degradation, ColumnScanOfWideFrameWorks) {
  // Column-major scan turns width into the line count: a wide frame then
  // has many short lines; the dataflow must still be exact.
  img::Image a = img::make_test_frame(Size{96, 16}, 3);
  Call call = Call::make_intra(PixelOp::MorphGradient,
                               alib::Neighborhood::con8());
  call.scan = alib::ScanOrder::ColumnMajor;
  alib::SoftwareBackend sw;
  core::EngineBackend hw;
  test::expect_images_equal(sw.execute(call, a).output,
                            hw.execute(call, a).output);
}

TEST(Degradation, SingleLineFrame) {
  // Degenerate 1-line image: border replication everywhere.
  img::Image a = img::make_test_frame(Size{64, 1}, 4);
  const Call call = Call::make_intra(PixelOp::MorphGradient,
                                     alib::Neighborhood::con8());
  alib::SoftwareBackend sw;
  core::EngineBackend hw;
  test::expect_images_equal(sw.execute(call, a).output,
                            hw.execute(call, a).output);
}

TEST(Degradation, TinyFrames) {
  for (const Size s : {Size{1, 1}, Size{2, 2}, Size{3, 5}}) {
    img::Image a = img::make_test_frame(s, 6);
    const Call call = Call::make_intra(PixelOp::Dilate,
                                       alib::Neighborhood::con8());
    alib::SoftwareBackend sw;
    core::EngineBackend hw;
    test::expect_images_equal(sw.execute(call, a).output,
                              hw.execute(call, a).output);
  }
}

}  // namespace
}  // namespace ae
