// Failure injection and configuration validation: every documented
// precondition of the engine must reject bad inputs with a typed error, and
// degraded-but-legal configurations must degrade gracefully, never corrupt.
#include <gtest/gtest.h>

#include "core/core.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::PixelOp;

TEST(ConfigValidation, RejectsBadClock) {
  core::EngineConfig c;
  c.clock_mhz = 0.0;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsOddBusWidth) {
  core::EngineConfig c;
  c.bus_width_bits = 48;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsBadEfficiency) {
  core::EngineConfig c;
  c.bus_efficiency = 0.0;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
  c.bus_efficiency = 1.5;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsTooFewBanks) {
  core::EngineConfig c;
  c.zbt_banks = 4;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsNonPowerOfTwoStrip) {
  core::EngineConfig c;
  c.strip_lines = 12;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsStripBelowNeighborhoodSpan) {
  // "The selected strip size is sixteen lines, as the maximum range of
  // input data required to process one pixel is nine lines."
  core::EngineConfig c;
  c.strip_lines = 8;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsShallowIim) {
  core::EngineConfig c;
  c.iim_lines = 4;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(ConfigValidation, RejectsWrongStageCount) {
  core::EngineConfig c;
  c.pipeline_stages = 5;
  EXPECT_THROW(core::validate_config(c), InvalidArgument);
}

TEST(FrameValidation, RejectsOversizedFrames) {
  core::EngineConfig c;
  EXPECT_THROW(core::validate_frame(c, Size{400, 288}), InvalidArgument);
  EXPECT_THROW(core::validate_frame(c, Size{0, 10}), InvalidArgument);
}

TEST(FrameValidation, RejectsFramesBeyondBankCapacity) {
  core::EngineConfig c;
  c.zbt_bank_bytes = 64 * 1024;
  c.max_line_pixels = 352;
  EXPECT_THROW(core::validate_frame(c, img::formats::kCif), InvalidArgument);
  EXPECT_NO_THROW(core::validate_frame(c, Size{96, 96}));
}

TEST(EngineBackendErrors, RejectsBadCalls) {
  core::EngineBackend be;
  const img::Image a = test::small_frame();
  // Inter without a second frame.
  EXPECT_THROW(be.execute(Call::make_inter(PixelOp::Add), a),
               InvalidArgument);
}

TEST(Degradation, AsymmetricNeighborhoodsWork) {
  // A window lying entirely above (or below) the center: the clamped line
  // window logic must still feed the matrix register correctly.
  const img::Image a = test::small_frame();
  alib::SoftwareBackend sw;
  core::EngineBackend hw;
  for (const Point off : {Point{0, -5}, Point{0, 4}, Point{-3, 0}}) {
    const Call call = Call::make_intra(
        PixelOp::Erode, alib::Neighborhood({off, Point{0, 0}}));
    SCOPED_TRACE(to_string(off));
    test::expect_images_equal(sw.execute(call, a).output,
                              hw.execute(call, a).output);
  }
}

TEST(EngineBackendErrors, OversizedFrameRejectedInBothModes) {
  const img::Image big(Size{300, 400});  // height > 352 buffer sizing
  for (const auto mode :
       {core::EngineMode::CycleAccurate, core::EngineMode::Analytic}) {
    core::EngineBackend be({}, mode);
    EXPECT_THROW(
        be.execute(Call::make_intra(PixelOp::Copy, alib::Neighborhood::con0()),
                   big),
        InvalidArgument)
        << to_string(mode);
  }
}

TEST(Degradation, MinimalIimStillCorrect) {
  // 9-line neighborhood through a 9-line IIM: maximum pressure, same bits.
  core::EngineConfig tight;
  tight.iim_lines = 9;
  tight.strip_lines = 16;
  alib::OpParams p;
  p.coeffs.assign(9, 1);
  p.shift = 3;
  const Call call = Call::make_intra(PixelOp::Convolve,
                                     alib::Neighborhood::vline(9),
                                     ChannelMask::y(), ChannelMask::y(), p);
  const img::Image a = test::small_frame();
  alib::SoftwareBackend sw;
  core::EngineBackend hw(tight);
  test::expect_images_equal(sw.execute(call, a).output,
                            hw.execute(call, a).output);
}

TEST(Degradation, TallNeighborhoodRejectedWhenIimTooSmall) {
  core::EngineConfig tight;
  tight.iim_lines = 9;
  // Inter mode halves the IIM: a 9-line window can't fit 4 lines per
  // frame... (inter uses CON_0 windows, so instead check intra rejection
  // with a halved custom config is not expressible — use vline on a
  // config whose IIM is 9 and neighborhood needing 9 works, but an
  // 11-line neighborhood is impossible to build at all.)
  EXPECT_THROW(alib::Neighborhood::vline(11), InvalidArgument);
}

TEST(Degradation, SlowBusOnlyChangesTiming) {
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  core::EngineConfig slow;
  slow.bus_efficiency = 0.3;
  slow.interrupt_overhead_cycles = 5000;
  core::EngineBackend fast_be;
  core::EngineBackend slow_be(slow);
  const Call call = Call::make_inter(PixelOp::Average);
  const alib::CallResult rf = fast_be.execute(call, a, &b);
  const alib::CallResult rs = slow_be.execute(call, a, &b);
  test::expect_images_equal(rf.output, rs.output);
  EXPECT_GT(rs.stats.cycles, rf.stats.cycles);
  EXPECT_EQ(rf.stats.loads, rs.stats.loads);  // traffic identical
}

TEST(Degradation, ColumnScanOfWideFrameWorks) {
  // Column-major scan turns width into the line count: a wide frame then
  // has many short lines; the dataflow must still be exact.
  img::Image a = img::make_test_frame(Size{96, 16}, 3);
  Call call = Call::make_intra(PixelOp::MorphGradient,
                               alib::Neighborhood::con8());
  call.scan = alib::ScanOrder::ColumnMajor;
  alib::SoftwareBackend sw;
  core::EngineBackend hw;
  test::expect_images_equal(sw.execute(call, a).output,
                            hw.execute(call, a).output);
}

TEST(Degradation, SingleLineFrame) {
  // Degenerate 1-line image: border replication everywhere.
  img::Image a = img::make_test_frame(Size{64, 1}, 4);
  const Call call = Call::make_intra(PixelOp::MorphGradient,
                                     alib::Neighborhood::con8());
  alib::SoftwareBackend sw;
  core::EngineBackend hw;
  test::expect_images_equal(sw.execute(call, a).output,
                            hw.execute(call, a).output);
}

TEST(Degradation, TinyFrames) {
  for (const Size s : {Size{1, 1}, Size{2, 2}, Size{3, 5}}) {
    img::Image a = img::make_test_frame(s, 6);
    const Call call = Call::make_intra(PixelOp::Dilate,
                                       alib::Neighborhood::con8());
    alib::SoftwareBackend sw;
    core::EngineBackend hw;
    test::expect_images_equal(sw.execute(call, a).output,
                              hw.execute(call, a).output);
  }
}

TEST(FaultPlanValidation, RejectsRatesOutsideUnitInterval) {
  core::FaultPlan plan;
  plan.zbt_flip_rate = -0.1;
  EXPECT_THROW(core::validate_plan(plan), InvalidArgument);
  plan.zbt_flip_rate = 1.1;
  EXPECT_THROW(core::validate_plan(plan), InvalidArgument);
  plan.zbt_flip_rate = 1.0;
  EXPECT_NO_THROW(core::validate_plan(plan));
}

TEST(FaultPlanValidation, RejectsDegeneratePolicy) {
  core::TransportPolicy policy;
  policy.watchdog_deadline_cycles = 0;
  EXPECT_THROW(core::validate_policy(policy), InvalidArgument);
}

TEST(FaultInjector, DisabledByDefault) {
  core::FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  u32 word = 0xDEADBEEFu;
  EXPECT_EQ(inj.input_word_fate(word),
            core::FaultInjector::WordFate::Deliver);
  EXPECT_EQ(word, 0xDEADBEEFu);
  EXPECT_FALSE(inj.drop_interrupt());
  EXPECT_FALSE(inj.flip_stored_word(word));
  EXPECT_EQ(inj.counters().total(), 0u);
}

TEST(FaultInjector, ScriptedFaultFiresAtExactOpportunity) {
  core::FaultPlan plan;
  plan.script = {{core::FaultKind::ZbtBitFlip, 2}};
  core::FaultInjector inj(plan);
  u32 word = 0;
  EXPECT_FALSE(inj.flip_stored_word(word));  // opportunity 0
  EXPECT_FALSE(inj.flip_stored_word(word));  // opportunity 1
  EXPECT_TRUE(inj.flip_stored_word(word));   // opportunity 2 — fires
  EXPECT_NE(word, 0u);
  EXPECT_EQ(__builtin_popcount(word), 1);    // exactly one bit flipped
  EXPECT_FALSE(inj.flip_stored_word(word));  // script exhausted
  EXPECT_EQ(inj.counters().zbt_bits_flipped, 1u);
}

TEST(FaultInjector, SameSeedSameFaultSequence) {
  core::FaultPlan plan;
  plan.seed = 7;
  plan.dma_corrupt_rate = 0.25;
  core::FaultInjector a(plan);
  core::FaultInjector b(plan);
  for (int i = 0; i < 256; ++i) {
    u32 wa = 0x1234u;
    u32 wb = 0x1234u;
    EXPECT_EQ(a.input_word_fate(wa), b.input_word_fate(wb));
    EXPECT_EQ(wa, wb);
  }
  EXPECT_GT(a.counters().words_corrupted, 0u);
}

TEST(FaultCrc, Crc32MatchesKnownVector) {
  // CRC-32 of the bytes 31 32 33 34 35 36 37 38 39 ("123456789") is the
  // classic 0xCBF43926 check value; feed it as little-endian words plus a
  // trailing byte check via two partial words is awkward, so check the
  // word-level property instead: one flipped bit always changes the CRC.
  core::Crc32 clean;
  core::Crc32 dirty;
  for (u32 w : {0x00000000u, 0xFFFFFFFFu, 0x12345678u}) {
    clean.add(w);
    dirty.add(w == 0x12345678u ? w ^ 0x00010000u : w);
  }
  EXPECT_NE(clean.value(), dirty.value());
  // And a known IEEE CRC-32 vector: crc32("12345678") = 0x9AE0DAAF, fed
  // as two little-endian words.
  core::Crc32 vector;
  vector.add(0x34333231u);  // "1234"
  vector.add(0x38373635u);  // "5678"
  EXPECT_EQ(vector.value(), 0x9AE0DAAFu);
  vector.reset();
  vector.add(0x34333231u);
  vector.add(0x38373635u);
  EXPECT_EQ(vector.value(), 0x9AE0DAAFu);  // reset restores the seed
}

TEST(FaultCrc, FrameCheckMixIsOrderIndependentButPositionSensitive) {
  // XOR of mixed triples: scan order vs address order must agree, but
  // swapping the values of two positions must not cancel out.
  const u64 fwd = core::frame_check_mix(0, 0, 10) ^
                  core::frame_check_mix(1, 0, 20) ^
                  core::frame_check_mix(2, 1, 30);
  const u64 rev = core::frame_check_mix(2, 1, 30) ^
                  core::frame_check_mix(0, 0, 10) ^
                  core::frame_check_mix(1, 0, 20);
  EXPECT_EQ(fwd, rev);
  const u64 swapped = core::frame_check_mix(0, 0, 20) ^
                      core::frame_check_mix(1, 0, 10) ^
                      core::frame_check_mix(2, 1, 30);
  EXPECT_NE(fwd, swapped);
}

TEST(FaultTransport, EngineThrowsTypedFailuresWithCycleCharge) {
  // Below the driver layer: a dead transport surfaces as EngineHang (lost
  // interrupt, charged the watchdog deadline) or TransportError (retry
  // budget exhausted), both carrying the burned cycles.
  const img::Image a = test::small_frame();
  const Call call = Call::make_intra(PixelOp::Copy,
                                     alib::Neighborhood::con0());
  {
    core::FaultPlan plan;
    plan.interrupt_loss_rate = 1.0;
    core::FaultInjector inj(plan);
    try {
      core::simulate_call({}, call, a, nullptr, nullptr, nullptr, &inj);
      FAIL() << "expected EngineHang";
    } catch (const core::EngineHang& hang) {
      EXPECT_GE(hang.cycles_spent, inj.policy().watchdog_deadline_cycles);
    }
    EXPECT_EQ(inj.detections().watchdog_fires, 1u);
  }
  {
    core::FaultPlan plan;
    plan.dma_corrupt_rate = 1.0;  // every word corrupt: retries can't win
    core::FaultInjector inj(plan);
    try {
      core::simulate_call({}, call, a, nullptr, nullptr, nullptr, &inj);
      FAIL() << "expected TransportError";
    } catch (const core::TransportError& err) {
      EXPECT_GT(err.cycles_spent, 0u);
    }
    EXPECT_EQ(inj.detections().strip_crc_mismatches,
              static_cast<u64>(inj.policy().max_strip_retries) + 1);
  }
}

}  // namespace
}  // namespace ae
