// Engine trace tests: the transition timeline must tell a consistent story
// of a call — ordered phases, balanced stall episodes, bounded capacity.
#include <gtest/gtest.h>

#include "core/core.hpp"
#include "core/trace.hpp"
#include "test_util.hpp"

namespace ae::core {
namespace {

EngineTrace run_traced(const alib::Call& call, const img::Image& a,
                       const img::Image* b = nullptr,
                       EngineConfig config = {}) {
  EngineTrace trace;
  simulate_call(config, call, a, b, nullptr, &trace);
  return trace;
}

u64 cycle_of(const EngineTrace& trace, TraceEvent event) {
  for (const TraceRecord& r : trace.records())
    if (r.event == event) return r.cycle;
  ADD_FAILURE() << "event " << to_string(event) << " missing";
  return 0;
}

TEST(Trace, PhasesAppearInCausalOrder) {
  const img::Image a = test::small_frame();
  const EngineTrace trace = run_traced(
      alib::Call::make_intra(alib::PixelOp::MorphGradient,
                             alib::Neighborhood::con8()),
      a);
  ASSERT_EQ(trace.count(TraceEvent::CallStart), 1u);
  ASSERT_EQ(trace.count(TraceEvent::CallEnd), 1u);
  const u64 start = cycle_of(trace, TraceEvent::CallStart);
  const u64 first_pixel = cycle_of(trace, TraceEvent::FirstPixelProduced);
  const u64 input_done = cycle_of(trace, TraceEvent::InputDone);
  const u64 processing_done = cycle_of(trace, TraceEvent::ProcessingDone);
  const u64 output_done = cycle_of(trace, TraceEvent::OutputDone);
  EXPECT_LT(start, first_pixel);
  EXPECT_LT(first_pixel, input_done);  // overlap: processing starts early
  EXPECT_LE(input_done, processing_done);
  EXPECT_LE(processing_done, output_done);
}

TEST(Trace, CyclesAreMonotone) {
  const img::Image a = test::small_frame();
  const EngineTrace trace = run_traced(
      alib::Call::make_intra(alib::PixelOp::Erode,
                             alib::Neighborhood::con4()),
      a);
  u64 last = 0;
  for (const TraceRecord& r : trace.records()) {
    EXPECT_GE(r.cycle, last);
    last = r.cycle;
  }
}

TEST(Trace, StallEpisodesBalance) {
  const img::Image a = test::small_frame();
  const EngineTrace trace = run_traced(
      alib::Call::make_intra(alib::PixelOp::Copy, alib::Neighborhood::con0()),
      a);
  EXPECT_EQ(trace.count(TraceEvent::PuStallBegin),
            trace.count(TraceEvent::PuStallEnd));
  EXPECT_GT(trace.longest_stall(), 0u);  // the PU waits on the bus
}

TEST(Trace, StripArrivalsAndInterruptsCounted) {
  const img::Image a = test::small_frame();  // 32 lines = 2 full strips
  const EngineTrace trace = run_traced(
      alib::Call::make_intra(alib::PixelOp::Copy, alib::Neighborhood::con0()),
      a);
  EXPECT_EQ(trace.count(TraceEvent::InputStripArrived), 2u);
  EXPECT_GE(trace.count(TraceEvent::Interrupt), 3u);
  EXPECT_EQ(trace.count(TraceEvent::FrameComplete), 1u);
}

TEST(Trace, StrictInterShowsBothFramesBeforeFirstPixel) {
  EngineConfig strict;
  strict.strict_inter_sequencing = true;
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  const EngineTrace trace = run_traced(
      alib::Call::make_inter(alib::PixelOp::AbsDiff), a, &b, strict);
  EXPECT_EQ(trace.count(TraceEvent::FrameComplete), 2u);
  const u64 first_pixel = cycle_of(trace, TraceEvent::FirstPixelProduced);
  const u64 input_done = cycle_of(trace, TraceEvent::InputDone);
  EXPECT_GT(first_pixel, input_done);  // the "special inter" behaviour
}

TEST(Trace, BlockReleasesInOrder) {
  const img::Image a = test::small_frame();
  const EngineTrace trace = run_traced(
      alib::Call::make_intra(alib::PixelOp::Copy, alib::Neighborhood::con0()),
      a);
  ASSERT_EQ(trace.count(TraceEvent::BlockReleased), 2u);
  u64 block_a = 0;
  u64 block_b = 0;
  for (const TraceRecord& r : trace.records())
    if (r.event == TraceEvent::BlockReleased)
      (r.arg == 0 ? block_a : block_b) = r.cycle;
  EXPECT_LT(block_a, block_b);
}

TEST(Trace, CapacityBoundsRecordsNotCounts) {
  EngineTrace tiny(4);
  for (int i = 0; i < 10; ++i)
    tiny.record(static_cast<u64>(i), TraceEvent::Interrupt);
  EXPECT_EQ(tiny.records().size(), 4u);
  EXPECT_EQ(tiny.total_events(), 10u);
  EXPECT_EQ(tiny.dropped_events(), 6u);
  EXPECT_NE(tiny.format().find("dropped"), std::string::npos);
}

TEST(Trace, FormatListsEvents) {
  const img::Image a = test::small_frame();
  const EngineTrace trace = run_traced(
      alib::Call::make_intra(alib::PixelOp::Copy, alib::Neighborhood::con0()),
      a);
  const std::string text = trace.format(8);
  EXPECT_NE(text.find("call-start"), std::string::npos);
  EXPECT_NE(text.find("@"), std::string::npos);
}

TEST(Trace, ClearResets) {
  EngineTrace trace;
  trace.record(1, TraceEvent::Interrupt);
  trace.clear();
  EXPECT_EQ(trace.total_events(), 0u);
  EXPECT_TRUE(trace.records().empty());
}

TEST(Trace, BackendAttachment) {
  EngineBackend be;
  EngineTrace trace;
  be.set_trace(&trace);
  const img::Image a = test::small_frame();
  be.execute(alib::Call::make_intra(alib::PixelOp::Copy,
                                    alib::Neighborhood::con0()),
             a);
  EXPECT_GT(trace.total_events(), 0u);
}

TEST(Trace, SegmentCallsTraced) {
  const img::Image a = test::small_frame();
  alib::SegmentSpec spec;
  spec.seeds = {{5, 5}};
  spec.luma_threshold = 255;
  const EngineTrace trace = run_traced(
      alib::Call::make_segment(alib::PixelOp::Copy,
                               alib::Neighborhood::con0(), spec,
                               ChannelMask::y(),
                               ChannelMask::y().with(Channel::Alfa)),
      a);
  EXPECT_EQ(trace.count(TraceEvent::CallStart), 1u);
  EXPECT_EQ(trace.count(TraceEvent::ProcessingDone), 1u);
  EXPECT_EQ(trace.count(TraceEvent::CallEnd), 1u);
}

}  // namespace
}  // namespace ae::core
