// Perspective GME tests: warp math, the 8x8 solver, the position-aware
// kernel and end-to-end recovery of synthetic perspective distortion.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gme/affine_estimator.hpp"
#include "gme/perspective_estimator.hpp"
#include "image/compare.hpp"
#include "image/synth.hpp"
#include "test_util.hpp"

namespace ae::gme {
namespace {

TEST(PerspectiveMotion, IdentityByDefault) {
  const PerspectiveMotion m;
  double x = 0.0;
  double y = 0.0;
  ASSERT_TRUE(m.apply(17.0, 9.0, x, y));
  EXPECT_DOUBLE_EQ(x, 17.0);
  EXPECT_DOUBLE_EQ(y, 9.0);
  EXPECT_DOUBLE_EQ(m.deviation_from_translation(), 0.0);
}

TEST(PerspectiveMotion, AffineSliceMatchesAffine) {
  AffineMotion a = AffineMotion::from_translation({2.0, -1.0});
  a.a1 = 1.02;
  a.a4 = -0.01;
  const PerspectiveMotion p = PerspectiveMotion::from_affine(a);
  double px = 0.0;
  double py = 0.0;
  double ax = 0.0;
  double ay = 0.0;
  ASSERT_TRUE(p.apply(30.0, 40.0, px, py));
  a.apply(30.0, 40.0, ax, ay);
  EXPECT_DOUBLE_EQ(px, ax);
  EXPECT_DOUBLE_EQ(py, ay);
}

TEST(PerspectiveMotion, DegenerateDenominatorRejected) {
  PerspectiveMotion m;
  m.p[6] = -0.1;  // den = 1 - 0.1x: degenerate past x = 7.5
  double x = 0.0;
  double y = 0.0;
  EXPECT_TRUE(m.apply(2.0, 0.0, x, y));
  EXPECT_FALSE(m.apply(8.0, 0.0, x, y));
}

TEST(PerspectiveMotion, ScalingRoundTrips) {
  PerspectiveMotion m;
  m.p = {4.0, 1.01, 0.002, -2.0, -0.001, 0.99, 1e-4, -2e-4};
  const PerspectiveMotion back = m.scaled(0.5).scaled(2.0);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(back.p[i], m.p[i], 1e-12) << i;
}

TEST(WarpPerspective, MatchesAffineWarpOnAffineSlice) {
  const img::Image src = img::make_test_frame(Size{48, 32}, 3);
  AffineMotion a = AffineMotion::from_translation({1.5, 0.5});
  a.a2 = 0.01;
  const img::Image via_affine = warp_affine(src, a);
  const img::Image via_persp =
      warp_perspective(src, PerspectiveMotion::from_affine(a));
  EXPECT_EQ(img::count_differing(via_affine, via_persp, ChannelMask::yuv()),
            0);
}

TEST(PerspectiveKernel, AccumulatesJacobian) {
  alib::OpParams p;
  p.threshold = 100;
  p.warp_params = {0, 1, 0, 0, 0, 1, 0, 0};  // identity warp
  alib::SideAccum side;
  img::Pixel ref = img::Pixel::gray(110);
  img::Pixel warped = img::Pixel::gray(100);  // r = 10
  warped.alfa = static_cast<u16>(alib::kGradBias + 4);  // gx = 4
  warped.aux = static_cast<u16>(alib::kGradBias + 0);   // gy = 0
  alib::apply_inter(alib::PixelOp::GmePerspective, p, ref, warped,
                    Point{2, 3}, ChannelMask::y(), ChannelMask::y(), side);
  // At identity, D=1, X'=x=2, Y'=y=3, mix = gx*2 = 8.
  // g = [4, 8, 12, 0, 0, 0, -16, -24].
  EXPECT_DOUBLE_EQ(side.gme_persp[0], 16.0);   // g0*g0
  EXPECT_DOUBLE_EQ(side.gme_persp[1], 32.0);   // g0*g1
  EXPECT_DOUBLE_EQ(side.gme_persp[6], -64.0);  // g0*g6
  EXPECT_DOUBLE_EQ(side.gme_persp[36], 40.0);  // g0*r
  EXPECT_DOUBLE_EQ(side.gme_persp[44], 1.0);
}

TEST(PerspectiveKernel, DegeneratePixelSkipped) {
  alib::OpParams p;
  p.threshold = 100;
  p.warp_params = {0, 1, 0, 0, 0, 1, -0.1, 0};
  alib::SideAccum side;
  img::Pixel warped = img::Pixel::gray(90);
  warped.alfa = alib::kGradBias + 1;
  warped.aux = alib::kGradBias;
  alib::apply_inter(alib::PixelOp::GmePerspective, p, img::Pixel::gray(100),
                    warped, Point{20, 0}, ChannelMask::y(), ChannelMask::y(),
                    side);
  EXPECT_DOUBLE_EQ(side.gme_persp[44], 0.0);  // no vote
  EXPECT_EQ(side.sad, 10u);                   // but SAD still counted
}

TEST(SolvePerspective, RecoversKnownSolution) {
  const std::array<double, 8> truth{0.4,   0.002,  -0.001, -0.3,
                                    0.001, -0.002, 2e-5,   -1e-5};
  std::array<double, alib::kPerspectiveAccumTerms> sums{};
  Rng rng(9);
  for (int n = 0; n < 8000; ++n) {
    const double gx = rng.uniform(-300, 300);
    const double gy = rng.uniform(-300, 300);
    const double x = rng.uniform(0, 351);
    const double y = rng.uniform(0, 287);
    const double mix = gx * x + gy * y;  // identity warp: X'=x, Y'=y
    const std::array<double, 8> g{gx,      gx * x,  gx * y,  gy,
                                  gy * x,  gy * y,  -x * mix, -y * mix};
    double r = 0.0;
    for (std::size_t i = 0; i < 8; ++i) r += g[i] * truth[i] / 8.0;
    std::size_t k = 0;
    for (std::size_t i = 0; i < 8; ++i)
      for (std::size_t j = i; j < 8; ++j) sums[k++] += g[i] * g[j];
    for (std::size_t i = 0; i < 8; ++i) sums[36 + i] += g[i] * r;
    sums[44] += 1.0;
  }
  std::array<double, 8> delta{};
  ASSERT_TRUE(solve_perspective_step(sums, delta));
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(delta[i], truth[i], 0.02 * std::abs(truth[i]) + 1e-7) << i;
}

TEST(SolvePerspective, RejectsDegenerate) {
  std::array<double, alib::kPerspectiveAccumTerms> sums{};
  std::array<double, 8> delta{};
  EXPECT_FALSE(solve_perspective_step(sums, delta));
}

/// Synthetic pair: a generated frame and its perspective-warped sibling.
struct PerspectivePair {
  img::Image ref;
  img::Image cur;
  PerspectiveMotion truth;
};

PerspectivePair make_pair(const PerspectiveMotion& truth) {
  PerspectivePair pair;
  pair.truth = truth;
  pair.cur = img::make_test_frame(Size{192, 160}, 81);
  // ref(x) = cur(W(x; truth)) so that the estimator, which searches for m
  // with warp(cur, m) == ref, should recover m == truth.
  pair.ref = warp_perspective(pair.cur, truth);
  return pair;
}

TEST(PerspectiveEstimator, RecoversPerspectiveDistortion) {
  PerspectiveMotion truth;
  truth.p = {1.5, 1.0, 0.0, -0.8, 0.0, 1.0, 4e-5, -3e-5};
  const PerspectivePair pair = make_pair(truth);
  alib::SoftwareBackend be;
  const Pyramid ref = build_pyramid(be, pair.ref, 3);
  const Pyramid cur = build_pyramid(be, pair.cur, 3);
  PerspectiveGmeEstimator est(be);
  const PerspectiveGmeResult r = est.estimate(ref, cur);
  EXPECT_NEAR(r.motion.p[0], truth.p[0], 0.3);
  EXPECT_NEAR(r.motion.p[3], truth.p[3], 0.3);
  EXPECT_NEAR(r.motion.p[6], truth.p[6], 2.5e-5);
  EXPECT_NEAR(r.motion.p[7], truth.p[7], 2.5e-5);
}

TEST(PerspectiveEstimator, BeatsAffineUnderPerspective) {
  PerspectiveMotion truth;
  truth.p = {0.5, 1.0, 0.0, 0.5, 0.0, 1.0, 8e-5, 5e-5};
  const PerspectivePair pair = make_pair(truth);
  alib::SoftwareBackend be;
  const Pyramid ref = build_pyramid(be, pair.ref, 3);
  const Pyramid cur = build_pyramid(be, pair.cur, 3);
  AffineGmeEstimator affine(be);
  PerspectiveGmeEstimator persp(be);
  const u64 affine_sad = affine.estimate(ref, cur).final_sad;
  const u64 persp_sad = persp.estimate(ref, cur).final_sad;
  EXPECT_LT(persp_sad, affine_sad);
}

TEST(PerspectiveEstimator, EngineBackendBitEqual) {
  const img::Image ref = img::make_test_frame(Size{96, 64}, 4);
  img::Image packed;
  {
    alib::SoftwareBackend sw;
    packed = sw.execute(alib::Call::make_intra(
                            alib::PixelOp::GradientPack,
                            alib::Neighborhood::con8(), ChannelMask::y(),
                            ChannelMask::alfa().with(Channel::Aux)),
                        img::make_test_frame(Size{96, 64}, 5))
                 .output;
  }
  alib::OpParams p;
  p.threshold = 64;
  p.warp_params = {0.3, 1.001, 0.0, -0.2, 0.0, 0.999, 1e-5, -1e-5};
  const alib::Call accum = alib::Call::make_inter(
      alib::PixelOp::GmePerspective, ChannelMask::y(), ChannelMask::y(), p);
  alib::SoftwareBackend sw;
  core::EngineBackend hw({}, core::EngineMode::CycleAccurate);
  const alib::CallResult rs = sw.execute(accum, ref, &packed);
  const alib::CallResult rh = hw.execute(accum, ref, &packed);
  test::expect_images_equal(rs.output, rh.output);
  EXPECT_EQ(rs.side.gme_persp, rh.side.gme_persp);  // bitwise doubles
}

}  // namespace
}  // namespace ae::gme
