// Video object segmentation tests: full coverage, merging invariants,
// determinism and backend interchangeability (the paper's programmability
// claim: the same high-level algorithm runs on software or the engine).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/engine.hpp"
#include "segmentation/segmentation.hpp"
#include "image/synth.hpp"

namespace ae::seg {
namespace {

img::Image frame(Size size = Size{64, 48}, u64 seed = 5) {
  return img::make_test_frame(size, seed);
}

TEST(Segmentation, FullCoverage) {
  alib::SoftwareBackend be;
  const SegmentationResult r = segment_image(be, frame());
  EXPECT_DOUBLE_EQ(label_coverage(r.labels), 1.0);
}

TEST(Segmentation, SegmentsPartitionTheFrame) {
  alib::SoftwareBackend be;
  const img::Image f = frame();
  const SegmentationResult r = segment_image(be, f);
  i64 total = 0;
  std::set<alib::SegmentId> ids;
  for (const alib::SegmentInfo& s : r.segments) {
    EXPECT_GT(s.pixel_count, 0);
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate id " << s.id;
    total += s.pixel_count;
  }
  EXPECT_EQ(total, f.pixel_count());
  // Every label in the image belongs to a reported segment.
  for (const auto& px : r.labels.pixels())
    EXPECT_TRUE(ids.count(px.alfa) == 1) << "orphan label " << px.alfa;
}

TEST(Segmentation, MergeEnforcesMinSizeMostly) {
  alib::SoftwareBackend be;
  SegmentationParams params;
  params.min_segment_pixels = 24;
  const SegmentationResult r = segment_image(be, frame(), params);
  // Isolated small segments may survive (documented), but the bulk is
  // merged away.
  i64 small = 0;
  for (const alib::SegmentInfo& s : r.segments)
    if (s.pixel_count < params.min_segment_pixels) ++small;
  EXPECT_LT(static_cast<double>(small),
            0.2 * static_cast<double>(r.segments.size()) + 2.0);
  EXPECT_GT(r.merged_segments, 0);
}

TEST(Segmentation, DeterministicAcrossRuns) {
  alib::SoftwareBackend be;
  const SegmentationResult a = segment_image(be, frame());
  const SegmentationResult b = segment_image(be, frame());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.segments.size(), b.segments.size());
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Segmentation, FlatFrameIsOneSegment) {
  alib::SoftwareBackend be;
  const img::Image flat(Size{32, 32}, img::Pixel::gray(77));
  const SegmentationResult r = segment_image(be, flat);
  EXPECT_EQ(r.segments.size(), 1u);
  EXPECT_EQ(r.segments[0].pixel_count, flat.pixel_count());
}

TEST(Segmentation, TwoToneFrameSplitsAlongEdge) {
  alib::SoftwareBackend be;
  img::Image two(Size{32, 32}, img::Pixel::gray(20));
  img::draw_rect(two, Rect{16, 0, 16, 32}, img::Pixel::gray(220));
  SegmentationParams params;
  params.luma_threshold = 10;
  params.min_segment_pixels = 4;
  const SegmentationResult r = segment_image(be, two, params);
  ASSERT_GE(r.segments.size(), 2u);
  // The two dominant segments sit on opposite sides of the edge.
  const u16 left = r.labels.at(2, 16).alfa;
  const u16 right = r.labels.at(30, 16).alfa;
  EXPECT_NE(left, right);
  for (i32 y = 4; y < 28; ++y) {
    EXPECT_EQ(r.labels.at(4, y).alfa, left);
    EXPECT_EQ(r.labels.at(28, y).alfa, right);
  }
}

TEST(Segmentation, CountsAddressLibWork) {
  alib::SoftwareBackend be;
  const SegmentationResult r = segment_image(be, frame());
  EXPECT_GT(r.addresslib_calls, 2);  // smoothing + gradient + expansions
  EXPECT_GT(r.low_level.profile.total(), 0u);
  EXPECT_GT(r.low_level.table_writes, 0u);
  EXPECT_GT(r.high_level_instr, 0u);
}

TEST(Segmentation, WorksOnEngineBackendIdentically) {
  // The same control code driving the coprocessor (analytic mode) must
  // produce the identical segmentation — the flexibility argument.
  alib::SoftwareBackend sw;
  core::EngineBackend hw({}, core::EngineMode::Analytic);
  const img::Image f = frame(Size{48, 32}, 7);
  const SegmentationResult rs = segment_image(sw, f);
  const SegmentationResult rh = segment_image(hw, f);
  EXPECT_EQ(rs.labels, rh.labels);
  EXPECT_EQ(rs.segments.size(), rh.segments.size());
  // But the engine's accounting shows coprocessor cycles instead of a
  // software instruction profile.
  EXPECT_GT(rh.low_level.cycles, 0u);
}

TEST(Segmentation, ParamsValidated) {
  alib::SoftwareBackend be;
  SegmentationParams bad;
  bad.seeds_per_round = 0;
  EXPECT_THROW(segment_image(be, frame(), bad), InvalidArgument);
  EXPECT_THROW(segment_image(be, img::Image{}), InvalidArgument);
}

TEST(Segmentation, BboxesContainAllTheirPixels) {
  alib::SoftwareBackend be;
  const img::Image f = frame();
  const SegmentationResult r = segment_image(be, f);
  std::map<u16, Rect> boxes;
  for (const alib::SegmentInfo& s : r.segments) boxes[s.id] = s.bbox;
  for (i32 y = 0; y < f.height(); ++y)
    for (i32 x = 0; x < f.width(); ++x) {
      const u16 id = r.labels.at(x, y).alfa;
      ASSERT_TRUE(boxes.count(id));
      EXPECT_TRUE(boxes[id].contains({x, y}))
          << "pixel (" << x << "," << y << ") outside bbox of " << id;
    }
}

TEST(Segmentation, RenderLabelsProducesDistinctGrays) {
  alib::SoftwareBackend be;
  const SegmentationResult r = segment_image(be, frame());
  const img::Image vis = render_labels(r.labels);
  std::set<u8> grays;
  for (const auto& px : vis.pixels()) grays.insert(px.y);
  EXPECT_GT(grays.size(), 3u);
}

TEST(Segmentation, SegmentMeansAreConsistent) {
  alib::SoftwareBackend be;
  const img::Image f = frame();
  const SegmentationResult r = segment_image(be, f);
  // Recompute per-segment luma sums from the label map; the merged records
  // must agree (segment-indexed bookkeeping is conserved through merging).
  std::map<u16, u64> sums;
  std::map<u16, i64> counts;
  for (i32 y = 0; y < f.height(); ++y)
    for (i32 x = 0; x < f.width(); ++x) {
      const u16 id = r.labels.at(x, y).alfa;
      sums[id] += r.labels.at(x, y).y;
      counts[id] += 1;
    }
  for (const alib::SegmentInfo& s : r.segments) {
    EXPECT_EQ(counts[s.id], s.pixel_count) << "segment " << s.id;
  }
}

}  // namespace
}  // namespace ae::seg
