// Property tests of the sorting-network median lowering (row_kernels.hpp /
// intra_kernels.cpp): the pruned Batcher networks and the hand-coded 9-tap
// network must select exactly the value std::nth_element places at taps/2,
// for every supported window size, and the kernel backend's median path
// must be bit-exact with the interpreter across channel masks (u8 video
// channels and full-range u16 side channels) including the border path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "addresslib/kernels/kernel_backend.hpp"
#include "addresslib/kernels/row_kernels.hpp"
#include "test_util.hpp"

namespace ae::alib {
namespace {

/// Evaluates a median network on one scalar tap vector — the same step
/// semantics the row kernel applies per SIMD lane (intra_kernels.cpp).
u16 run_network(const kern::MedianNetwork& net, std::vector<u16> v) {
  for (const kern::MedianStep st : net.steps) {
    u16& a = v[st.lo];
    u16& b = v[st.hi];
    const u16 mn = a < b ? a : b;
    const u16 mx = a < b ? b : a;
    switch (st.kind) {
      case kern::MedianStepKind::Exchange:
        a = mn;
        b = mx;
        break;
      case kern::MedianStepKind::MinInto:
        a = mn;
        break;
      case kern::MedianStepKind::MaxInto:
        b = mx;
        break;
    }
  }
  return v[net.median_index];
}

u16 ref_median(std::vector<u16> v) {
  const auto mid = v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2);
  std::nth_element(v.begin(), mid, v.end());
  return *mid;
}

// 0-1 principle: a network of monotone min/max gates computes an order
// statistic for every input iff it computes it for every 0-1 input (the
// classical Knuth 5.3.4 argument applies to selection, not just sorting).
// Exhaustive through 15 taps — this covers the hand-coded 9-tap network
// and pruned Batcher networks on both sides of it, and therefore PROVES
// those networks correct for all u16 inputs.
TEST(MedianNetwork, ZeroOnePrincipleExhaustiveThroughFifteenTaps) {
  for (i32 taps = 1; taps <= 15; ++taps) {
    const kern::MedianNetwork& net = kern::median_network(taps);
    ASSERT_EQ(net.taps, taps);
    ASSERT_EQ(net.median_index, taps / 2);
    for (u32 mask = 0; mask < (u32{1} << taps); ++mask) {
      std::vector<u16> v(static_cast<std::size_t>(taps));
      for (i32 i = 0; i < taps; ++i) v[static_cast<std::size_t>(i)] =
          static_cast<u16>((mask >> i) & 1);
      ASSERT_EQ(run_network(net, v), ref_median(v))
          << taps << " taps, 0-1 mask " << mask;
    }
  }
}

// Every supported tap count (1..81: any rect window up to 9x9), random
// full-range u16 vectors alternating with tie-heavy tiny alphabets (ties
// are where a wrong exchange order would surface).
TEST(MedianNetwork, MatchesNthElementForEverySupportedTapCount) {
  Rng rng(0x9E37u);
  for (i32 taps = 1; taps <= 81; ++taps) {
    const kern::MedianNetwork& net = kern::median_network(taps);
    ASSERT_EQ(net.taps, taps);
    for (int it = 0; it < 100; ++it) {
      std::vector<u16> v(static_cast<std::size_t>(taps));
      if (it % 2 == 0) {
        for (u16& x : v) x = static_cast<u16>(rng.next_u64() & 0xFFFF);
      } else {
        for (u16& x : v) x = static_cast<u16>(rng.bounded(3));
      }
      ASSERT_EQ(run_network(net, v), ref_median(v))
          << taps << " taps, iteration " << it;
    }
  }
}

// End-to-end over the call path: every rect window size from 1x1 to 9x9,
// channel masks covering the u8 video channels and the full-range u16 side
// channels, on a frame small enough that most pixels take the border path
// (and, for the widest windows, the interior vanishes entirely).
TEST(MedianNetwork, KernelMedianMatchesInterpreterForEveryWindowAndMask) {
  const ChannelMask masks[] = {
      ChannelMask::y(), ChannelMask::all(),
      ChannelMask{ChannelMask::alfa().bits() | ChannelMask::aux().bits()}};
  const alib::KernelBackend kernels;
  const img::Image a = img::make_test_frame(Size{21, 13}, 77);
  std::vector<Neighborhood> windows;
  for (i32 lines = 1; lines <= 9; lines += 2)
    for (i32 taps = 1; taps <= 9; taps += 2)
      windows.push_back(Neighborhood::rect(taps, lines));
  windows.push_back(Neighborhood::con4());  // non-rect: 5-tap cross
  windows.push_back(Neighborhood::con8());
  for (const Neighborhood& nbhd : windows) {
    for (const ChannelMask mask : masks) {
      const Call call = Call::make_intra(PixelOp::Median, nbhd, mask, mask);
      SCOPED_TRACE(call.describe() + " mask=" + std::to_string(mask.bits()));
      const CallResult ref = execute_functional(call, a);
      test::expect_results_equal(ref, kernels.execute(call, a));
    }
  }
}

}  // namespace
}  // namespace ae::alib
