// VCD export tests: structural validity of the dump and consistency with
// the trace it was generated from.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/core.hpp"
#include "core/trace_vcd.hpp"
#include "test_util.hpp"

namespace ae::core {
namespace {

EngineTrace traced_call() {
  EngineTrace trace;
  const img::Image a = test::small_frame();
  simulate_call({}, alib::Call::make_intra(alib::PixelOp::MorphGradient,
                                           alib::Neighborhood::con8()),
                a, nullptr, nullptr, &trace);
  return trace;
}

TEST(TraceVcd, HeaderAndDefinitionsPresent) {
  const EngineTrace trace = traced_call();
  std::ostringstream os;
  write_vcd(trace, os);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 3 p phase $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 s pu_stall $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
}

TEST(TraceVcd, TimestampsAreMonotone) {
  const EngineTrace trace = traced_call();
  std::ostringstream os;
  write_vcd(trace, os);
  std::istringstream is(os.str());
  std::string line;
  u64 last = 0;
  bool any = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] != '#') continue;
    const u64 t = std::stoull(line.substr(1));
    EXPECT_GE(t, last);
    last = t;
    any = true;
  }
  EXPECT_TRUE(any);
}

TEST(TraceVcd, StallTransitionsBalance) {
  const EngineTrace trace = traced_call();
  std::ostringstream os;
  write_vcd(trace, os);
  std::istringstream is(os.str());
  std::string line;
  i64 ups = 0;
  i64 downs = 0;
  bool in_defs = true;
  while (std::getline(is, line)) {
    if (line.find("$enddefinitions") != std::string::npos) in_defs = false;
    if (in_defs) continue;
    if (line == "1s") ++ups;
    if (line == "0s" && ups > 0) ++downs;  // skip the dumpvars initial 0
  }
  EXPECT_EQ(ups, downs);
  EXPECT_GT(ups, 0);
}

TEST(TraceVcd, TimescaleScalesWithClock) {
  const EngineTrace trace = traced_call();
  std::ostringstream slow;
  std::ostringstream fast;
  write_vcd(trace, slow, 66.0);
  write_vcd(trace, fast, 132.0);
  // Find the final timestamp of each dump: double clock = half the span.
  auto last_stamp = [](const std::string& vcd) {
    u64 last = 0;
    std::istringstream is(vcd);
    std::string line;
    while (std::getline(is, line))
      if (!line.empty() && line[0] == '#') last = std::stoull(line.substr(1));
    return last;
  };
  const u64 t_slow = last_stamp(slow.str());
  const u64 t_fast = last_stamp(fast.str());
  EXPECT_NEAR(static_cast<double>(t_slow),
              2.0 * static_cast<double>(t_fast), 4.0);
}

TEST(TraceVcd, FileRoundTrip) {
  const EngineTrace trace = traced_call();
  const std::string path = ::testing::TempDir() + "/ae_trace.vcd";
  write_vcd(trace, path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string first;
  std::getline(is, first);
  EXPECT_NE(first.find("$date"), std::string::npos);
  EXPECT_THROW(write_vcd(trace, "/nonexistent-dir/x.vcd"), IoError);
}

TEST(TraceVcd, RejectsBadClock) {
  std::ostringstream os;
  EXPECT_THROW(write_vcd(EngineTrace{}, os, 0.0), InvalidArgument);
}

TEST(TraceVcd, FaultedCallShowsInjectionAndRecoverySignals) {
  // End to end: a scripted corrupt word plus a readback flip run through
  // the simulator; the trace carries the fault events and the VCD dump
  // pulses the fault/retry wires and names the fault kind.
  EngineTrace trace;
  FaultPlan plan;
  plan.script = {{FaultKind::DmaWordCorrupt, 0},
                 {FaultKind::ReadbackCorrupt, 40}};
  FaultInjector injector(plan);
  const img::Image a = test::small_frame();
  simulate_call({}, alib::Call::make_intra(alib::PixelOp::Copy,
                                           alib::Neighborhood::con0()),
                a, nullptr, nullptr, &trace, &injector);
  EXPECT_EQ(trace.count(TraceEvent::FaultInjected), 2u);
  EXPECT_EQ(trace.count(TraceEvent::StripRetry), 1u);
  EXPECT_EQ(trace.count(TraceEvent::ReadbackRetry), 1u);

  std::ostringstream os;
  write_vcd(trace, os);
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$var wire 1 f fault $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 3 e fault_kind $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 y transport_retry $end"),
            std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 w watchdog $end"), std::string::npos);
  // Each fault raises the pulse and the pulse falls again: equal edges.
  std::istringstream is(vcd);
  std::string line;
  i64 fault_ups = 0;
  i64 fault_downs = 0;
  i64 retry_ups = 0;
  bool in_defs = true;
  while (std::getline(is, line)) {
    if (line.find("$enddefinitions") != std::string::npos) in_defs = false;
    if (in_defs) continue;
    if (line == "1f") ++fault_ups;
    if (line == "0f" && fault_ups > 0) ++fault_downs;
    if (line == "1y") ++retry_ups;
  }
  EXPECT_GT(fault_ups, 0);
  EXPECT_EQ(fault_ups, fault_downs);
  EXPECT_GT(retry_ups, 0);
  // The corrupt word was healed by the retransmit: the result is intact.
}

TEST(TraceVcd, WatchdogEventAppearsInDump) {
  EngineTrace trace;
  FaultPlan plan;
  plan.script = {{FaultKind::LostInterrupt, 0}};
  FaultInjector injector(plan);
  const img::Image a = test::small_frame();
  EXPECT_THROW(
      simulate_call({}, alib::Call::make_intra(alib::PixelOp::Copy,
                                               alib::Neighborhood::con0()),
                    a, nullptr, nullptr, &trace, &injector),
      EngineHang);
  EXPECT_EQ(trace.count(TraceEvent::Watchdog), 1u);
  std::ostringstream os;
  write_vcd(trace, os);
  EXPECT_NE(os.str().find("1w"), std::string::npos);
}

}  // namespace
}  // namespace ae::core
