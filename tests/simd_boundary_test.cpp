// Boundary-value audit of the saturating/wrapping u16 arithmetic behind the
// pointwise kernels: the SIMD lane primitives (kernels/simd.hpp) and every
// pointwise op are swept through the domain extremes — 0/1/65534/65535 on
// the 16-bit side channels, 0/1/254/255 on the 8-bit video channels — and
// held to a wide-integer reference (lanes) and the functional interpreter
// (kernels).
//
// tests/CMakeLists.txt builds this file twice: once against the host's
// vector ISA (SSE2 on x86-64, NEON on aarch64) and once with
// AE_SIMD_FORCE_SCALAR, so the vector and scalar lowerings of simd.hpp are
// both pinned at the extremes (the third target is whichever of the two the
// build host does not select natively).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "addresslib/functional.hpp"
#include "addresslib/kernels/kernel_backend.hpp"
#include "addresslib/kernels/simd.hpp"
#include "common/parallel.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::Neighborhood;
using alib::PixelOp;
namespace simd = alib::kern::simd;

// The 8 u16 boundary values fill one vector exactly: saturation points,
// their neighbors, and the sign-bit edge of the epi16 instructions.
constexpr u16 kBounds[simd::kU16Lanes] = {0,      1,      2,      0x7FFF,
                                          0x8000, 0xFFFE, 0xFFFF, 42};

/// u8-channel boundary cycle and u16-channel boundary cycle for frames.
constexpr u16 kVideoBounds[] = {0, 1, 254, 255};
constexpr u16 kSideBounds[] = {0, 1, 65534, 65535};

// ---- lane primitives vs the wide-integer reference -------------------------

TEST(SimdBoundary, LanePrimitivesMatchTheWideReference) {
  // Rotating one operand against the other covers all 64 boundary pairs
  // while every lane stays independent.
  for (int rot = 0; rot < simd::kU16Lanes; ++rot) {
    alignas(16) u16 la[simd::kU16Lanes];
    alignas(16) u16 lb[simd::kU16Lanes];
    for (int i = 0; i < simd::kU16Lanes; ++i) {
      la[i] = kBounds[i];
      lb[i] = kBounds[(i + rot) % simd::kU16Lanes];
    }
    const simd::U16x8 va = simd::load(la);
    const simd::U16x8 vb = simd::load(lb);

    const auto check = [&](const char* name, simd::U16x8 got,
                           auto&& reference) {
      alignas(16) u16 lanes[simd::kU16Lanes];
      simd::store(lanes, got);
      for (int i = 0; i < simd::kU16Lanes; ++i) {
        const u32 a = la[i];
        const u32 b = lb[i];
        EXPECT_EQ(lanes[i], reference(a, b))
            << name << "(" << a << ", " << b << ") lane " << i;
      }
    };

    check("add", simd::add(va, vb),
          [](u32 a, u32 b) { return static_cast<u16>(a + b); });
    check("sub", simd::sub(va, vb),
          [](u32 a, u32 b) { return static_cast<u16>(a - b); });
    check("adds", simd::adds(va, vb), [](u32 a, u32 b) {
      return static_cast<u16>(std::min<u32>(a + b, 0xFFFFu));
    });
    check("subs", simd::subs(va, vb), [](u32 a, u32 b) {
      return static_cast<u16>(a > b ? a - b : 0);
    });
    check("mullo", simd::mullo(va, vb),
          [](u32 a, u32 b) { return static_cast<u16>(a * b); });
    check("min", simd::min(va, vb),
          [](u32 a, u32 b) { return static_cast<u16>(std::min(a, b)); });
    check("max", simd::max(va, vb),
          [](u32 a, u32 b) { return static_cast<u16>(std::max(a, b)); });
    for (const i32 count : {0, 1, 7, 8, 15}) {
      check(("shr" + std::to_string(count)).c_str(), simd::shr(va, count),
            [count](u32 a, u32) { return static_cast<u16>(a >> count); });
    }
  }
}

// ---- pointwise kernels at the channel extremes -----------------------------

/// A frame whose channels cycle through their boundary values with
/// different strides, so neighboring pixels (and the paired frame below)
/// hit every boundary combination.
img::Image boundary_frame(Size size, int phase) {
  img::Image frame(size);
  int i = phase;
  for (i32 y = 0; y < size.height; ++y) {
    for (i32 x = 0; x < size.width; ++x, ++i) {
      img::Pixel& p = frame.at(x, y);
      p.set(Channel::Y, static_cast<u16>(kVideoBounds[i % 4]));
      p.set(Channel::U, static_cast<u16>(kVideoBounds[(i / 2) % 4]));
      p.set(Channel::V, static_cast<u16>(kVideoBounds[(i / 4) % 4]));
      p.set(Channel::Alfa, kSideBounds[i % 4]);
      p.set(Channel::Aux, kSideBounds[(i / 3) % 4]);
    }
  }
  return frame;
}

TEST(SimdBoundary, PointwiseOpsAtChannelExtremesAreBitExact) {
  par::ThreadPool pool(2);
  const alib::KernelBackend kernels({&pool, 8});
  // 41 is coprime to every cycle stride above: the a/b pairing drifts
  // through all boundary combinations.
  const Size size{41, 16};
  const img::Image a = boundary_frame(size, 0);
  const img::Image b = boundary_frame(size, 7);

  const ChannelMask all = ChannelMask::all();
  std::vector<Call> calls = test::representative_inter_calls();
  // The representative set sticks to video masks; the side channels are
  // where the u16 extremes live, so sweep the saturating ops on them too.
  calls.push_back(Call::make_inter(PixelOp::Add, all, all));
  calls.push_back(Call::make_inter(PixelOp::Sub, all, all));
  calls.push_back(Call::make_inter(PixelOp::AbsDiff, all, all));
  calls.push_back(Call::make_inter(PixelOp::Min, all, all));
  calls.push_back(Call::make_inter(PixelOp::Max, all, all));
  calls.push_back(Call::make_inter(PixelOp::Average, all, all));
  {
    alib::OpParams p;
    p.shift = 8;
    calls.push_back(Call::make_inter(PixelOp::Mult, all, all, p));
  }
  calls.push_back(Call::make_inter(PixelOp::BitAnd, all, all));
  calls.push_back(Call::make_inter(PixelOp::BitOr, all, all));
  calls.push_back(Call::make_inter(PixelOp::BitXor, all, all));

  for (const Call& call : calls) {
    SCOPED_TRACE(call.describe());
    test::expect_results_equal(alib::execute_functional(call, a, &b),
                               kernels.execute(call, a, &b));
  }

  std::vector<Call> intra = test::representative_intra_calls();
  {
    alib::OpParams p;
    p.scale_num = 5;
    p.shift = 1;
    p.bias = -7;
    intra.push_back(Call::make_intra(PixelOp::Scale, Neighborhood::con0(),
                                     all, all, p));
  }
  intra.push_back(
      Call::make_intra(PixelOp::Median, Neighborhood::con8(), all, all));
  for (const Call& call : intra) {
    SCOPED_TRACE(call.describe());
    test::expect_results_equal(alib::execute_functional(call, a),
                               kernels.execute(call, a));
  }
}

// ---- clamp-free lowerings at the extremes ----------------------------------

/// Runs `call` with `clamp_free` stamped on and asserts the clamp-free
/// kernel lowering is bit-exact against the always-clamping interpreter.
/// Callers pick operand frames where the proof obligation (raw result in
/// [0, channel max]) actually holds at the extremes.
void expect_clamp_free_exact(const alib::KernelBackend& kernels, Call call,
                             ChannelMask proof, const img::Image& a,
                             const img::Image* b) {
  SCOPED_TRACE(call.describe());
  const alib::CallResult ref = alib::execute_functional(call, a, b);
  call.clamp_free = proof;
  test::expect_results_equal(ref, kernels.execute(call, a, b));
}

TEST(SimdBoundary, ClampFreeKernelsAreExactWhereTheProofHolds) {
  par::ThreadPool pool(2);
  const alib::KernelBackend kernels({&pool, 8});
  const Size size{41, 16};
  const ChannelMask all = ChannelMask::all();
  const img::Image extremes = boundary_frame(size, 0);

  // Add with b == 0 everywhere: raw = a, in range even at 65535.  (The
  // default Pixel centers chroma at 128, so zero every channel explicitly.)
  img::Image zeros(size, img::Pixel::from_words(0, 0));
  expect_clamp_free_exact(kernels, Call::make_inter(PixelOp::Add, all, all),
                          all, extremes, &zeros);

  // Sub with b == a (content-equal frame): raw = 0 on every channel.
  const img::Image same = boundary_frame(size, 0);
  expect_clamp_free_exact(kernels, Call::make_inter(PixelOp::Sub, all, all),
                          all, extremes, &same);

  // 8-bit Mult >> 8: raw peak 255*255 >> 8 = 254 — the SIMD mullo path.
  {
    alib::OpParams p;
    p.shift = 8;
    const img::Image other = boundary_frame(size, 5);
    expect_clamp_free_exact(
        kernels,
        Call::make_inter(PixelOp::Mult, ChannelMask::yuv(),
                         ChannelMask::yuv(), p),
        ChannelMask::yuv(), extremes, &other);
  }

  // 16-bit Mult with b == 1, shift 0: raw = a up to 65535 — the scalar
  // clamp-free path, where u16*u16 int promotion would overflow without
  // the kernels' explicit u32 widening.
  {
    img::Image ones(size);
    for (i32 y = 0; y < size.height; ++y)
      for (i32 x = 0; x < size.width; ++x)
        for (int ci = 0; ci < kChannelCount; ++ci)
          ones.at(x, y).set(static_cast<Channel>(ci), 1);
    expect_clamp_free_exact(kernels, Call::make_inter(PixelOp::Mult, all, all),
                            all, extremes, &ones);
  }

  // Intra Scale x1 >> 1: raw peak 32767 on the side channels, 127 on video.
  {
    alib::OpParams p;
    p.scale_num = 1;
    p.shift = 1;
    expect_clamp_free_exact(
        kernels,
        Call::make_intra(PixelOp::Scale, Neighborhood::con0(), all, all, p),
        all, extremes, nullptr);
  }

  // Convolve, box of 9 ones >> 5: raw peak 9*65535 >> 5 = 18432 — the
  // accumulator path with the clamp proven dead.
  {
    alib::OpParams p;
    p.coeffs.assign(9, 1);
    p.shift = 5;
    expect_clamp_free_exact(
        kernels,
        Call::make_intra(PixelOp::Convolve, Neighborhood::con8(), all, all,
                         p),
        all, extremes, nullptr);
  }
}

}  // namespace
}  // namespace ae
