// Golden-trace regression (tier2): the simulator's transition-level
// timeline for two canonical runs is pinned to committed digests.  Any
// change to engine sequencing — DMA interleave, stall episodes, interrupt
// placement, fault retries — shows up as a readable line-level diff here
// long before it shifts a headline cycle count.
//
// Updating on an *intentional* timing-model change:
//
//   AE_UPDATE_GOLDEN=1 ./build/tests/golden_trace_test
//
// rewrites tests/golden/*.trace in the source tree; review the diff and
// commit it with the change that caused it (see docs/TESTING.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "core/resilient.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::PixelOp;

// Injected by tests/CMakeLists.txt; points at tests/golden in the source
// tree so AE_UPDATE_GOLDEN rewrites the committed files.
#ifndef AE_GOLDEN_DIR
#error "build must define AE_GOLDEN_DIR"
#endif

/// One line per trace record: "<cycle> <event> <arg>".  Cycles are modeled
/// engine cycles, so the digest is deterministic on every platform.
std::string digest(const core::EngineTrace& trace) {
  std::ostringstream os;
  for (const core::TraceRecord& r : trace.records())
    os << r.cycle << ' ' << core::to_string(r.event) << ' ' << r.arg << '\n';
  return os.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

void check_against_golden(const std::string& name,
                          const core::EngineTrace& trace) {
  const std::string path = std::string(AE_GOLDEN_DIR) + "/" + name;
  const std::string actual = digest(trace);
  ASSERT_EQ(trace.dropped_events(), 0u)
      << "trace capacity too small for a golden run";

  if (std::getenv("AE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    SUCCEED() << "regenerated " << path;
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with AE_UPDATE_GOLDEN=1 to generate it";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  if (expected == actual) return;

  // Drift: report the first diverging record, not a wall of text.
  const std::vector<std::string> want = lines_of(expected);
  const std::vector<std::string> got = lines_of(actual);
  std::size_t first = 0;
  while (first < want.size() && first < got.size() &&
         want[first] == got[first])
    ++first;
  ADD_FAILURE() << "golden trace drift in " << name << " ("
                << want.size() << " -> " << got.size() << " records)\n"
                << "  first divergence at record " << first + 1 << ":\n"
                << "    golden: "
                << (first < want.size() ? want[first] : "<end of trace>")
                << "\n    actual: "
                << (first < got.size() ? got[first] : "<end of trace>")
                << "\n  if this timing change is intentional, regenerate "
                   "with AE_UPDATE_GOLDEN=1 and commit the diff "
                   "(docs/TESTING.md).";
}

TEST(GoldenTrace, CanonicalIntraCon8Call) {
  // The paper's workhorse: a CON_8 neighborhood op streamed over a
  // strip-aligned frame on the default board.
  const img::Image a = test::small_frame();
  const Call call =
      Call::make_intra(PixelOp::GradientMag, alib::Neighborhood::con8());
  core::EngineTrace trace;
  core::EngineRunStats run;
  core::simulate_call({}, call, a, nullptr, &run, &trace);
  EXPECT_GT(trace.count(core::TraceEvent::InputStripArrived), 0u);
  EXPECT_EQ(trace.count(core::TraceEvent::CallEnd), 1u);
  check_against_golden("intra_con8.trace", trace);
}

TEST(GoldenTrace, FaultedDmaRunWithRetries) {
  // Scripted faults (no rate randomness): the first DMA word corrupts and
  // a readback word flips, so the timeline pins both detection/retry paths
  // — strip CRC retransmission and result re-read — at exact cycles.
  const img::Image a = test::small_frame();
  const Call call =
      Call::make_intra(PixelOp::Dilate, alib::Neighborhood::con4());
  core::ResilientOptions options;
  options.plan.script = {{core::FaultKind::DmaWordCorrupt, 0},
                         {core::FaultKind::ReadbackCorrupt, 100}};
  core::ResilientSession session({}, options);
  core::EngineTrace trace;
  session.set_trace(&trace);
  session.execute(call, a);
  session.set_trace(nullptr);
  EXPECT_EQ(trace.count(core::TraceEvent::FaultInjected), 2u);
  EXPECT_GT(trace.count(core::TraceEvent::StripRetry), 0u);
  check_against_golden("faulted_dma.trace", trace);
}

}  // namespace
}  // namespace ae
