// aeplan static planner: cost envelopes, the bank-residency schedule, the
// AEW300-series performance lints and the machine-readable renderings.
//
// The load-bearing property is calibration soundness: for known-good
// programs the cycle-accurate simulator's measured cost must land inside
// the static [lower, upper] envelope, and the analytic backend must agree.
// This file gates it on the golden workloads (tier1);
// plan_calibration_test.cpp extends the same assertion over the 520-program
// fuzz corpus (tier2).  Every AEW lint gets a positive and a negative case.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/lints.hpp"
#include "analysis/planner.hpp"
#include "analysis/program_text.hpp"
#include "analysis/rules.hpp"
#include "analysis/verifier.hpp"
#include "core/core.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::Neighborhood;
using alib::PixelOp;
using analysis::CallPlan;
using analysis::CallProgram;
using analysis::CostEnvelope;
using analysis::PlanOptions;
using analysis::ProgramPlan;
using analysis::Report;
using analysis::TransferKind;

constexpr Size kFrame{48, 32};

Call intra_con8() { return Call::make_intra(PixelOp::GradientMag,
                                            Neighborhood::con8()); }

Call pointwise() {
  alib::OpParams params;
  params.threshold = 10;
  return Call::make_intra(PixelOp::Threshold, Neighborhood::con0(),
                          ChannelMask::y(), ChannelMask::y(), params);
}

// ---- per-call envelopes ----------------------------------------------------

TEST(PlanCall, StreamedEnvelopeBoundsTheAnalyticTiming) {
  const CostEnvelope e = analysis::plan_call(intra_con8(), kFrame);
  const u64 area = static_cast<u64>(kFrame.area());
  EXPECT_EQ(e.dma_words_in, 2 * area);
  EXPECT_EQ(e.dma_words_out, 2 * area);
  EXPECT_LT(e.cycles.lower, e.cycles.upper);
  EXPECT_TRUE(e.cycles.contains(e.cycles_estimate));
  // The setup overhead alone is 198k cycles; the bound must include it.
  EXPECT_GT(e.cycles.lower, 150'000u);
  EXPECT_TRUE(e.zbt_reads.contains(area));
  EXPECT_TRUE(e.zbt_writes.contains(area));
  EXPECT_EQ(e.iim_peak_lines, 16);
  EXPECT_EQ(e.oim_peak_lines, 16);
  EXPECT_GT(e.input_cycles_estimate, 0u);
  EXPECT_LT(e.input_cycles_estimate, e.cycles_estimate);
}

TEST(PlanCall, InterDoublesTheInputWords) {
  const CostEnvelope e =
      analysis::plan_call(Call::make_inter(PixelOp::AbsDiff), kFrame);
  const u64 area = static_cast<u64>(kFrame.area());
  EXPECT_EQ(e.dma_words_in, 4 * area);
  EXPECT_EQ(e.dma_words_out, 2 * area);
}

TEST(PlanCall, SegmentEnvelopeSpansTheTraversalExtremes) {
  alib::SegmentSpec spec;
  spec.seeds = {Point{4, 4}};
  const Call call =
      Call::make_segment(PixelOp::Copy, Neighborhood::con4(), spec,
                         ChannelMask::y(), ChannelMask::y().with(Channel::Alfa));
  const CostEnvelope e = analysis::plan_call(call, kFrame);
  const CostEnvelope streamed = analysis::plan_call(intra_con8(), kFrame);
  // The traversal may expand nothing at all: the floor admits zero ZBT work.
  EXPECT_EQ(e.zbt_reads.lower, 0u);
  EXPECT_EQ(e.zbt_writes.lower, 0u);
  EXPECT_GT(e.zbt_reads.upper, 0u);
  // A full flood prices above any streamed pass of the same frame.
  EXPECT_GT(e.cycles.upper, streamed.cycles.upper);
  EXPECT_TRUE(e.cycles.contains(e.cycles_estimate));
}

TEST(PlanCall, ContentAwareSegmentEnvelopeIsNestedInStatic) {
  // A sparse flood (single bright disk, tight luma criterion): the probe's
  // visit interval replaces the static [0, area] extremes.  Refinement may
  // only shrink — every refined bound must nest inside the static one —
  // and on this content it must shrink a lot.
  const Size size{48, 32};
  img::Image a = test::checkerboard_frame(size, 16, 16);  // flat background
  for (i32 y = 10; y < 20; ++y)
    for (i32 x = 10; x < 20; ++x) a.ref(x, y).y = 200;
  alib::SegmentSpec spec;
  spec.seeds = {Point{12, 12}};
  spec.luma_threshold = 10;
  const Call call =
      Call::make_segment(PixelOp::Copy, Neighborhood::con4(), spec,
                         ChannelMask::y(), ChannelMask::y().with(Channel::Alfa));

  const CostEnvelope coarse = analysis::plan_call(call, size);
  const alib::SegmentReachability reach =
      alib::probe_segment_reachability(a, call.segment);
  const CostEnvelope fine = analysis::plan_call(call, size, {}, reach);

  EXPECT_GE(fine.cycles.lower, coarse.cycles.lower);
  EXPECT_LE(fine.cycles.upper, coarse.cycles.upper);
  EXPECT_GE(fine.zbt_reads.lower, coarse.zbt_reads.lower);
  EXPECT_LE(fine.zbt_reads.upper, coarse.zbt_reads.upper);
  EXPECT_GE(fine.zbt_writes.lower, coarse.zbt_writes.lower);
  EXPECT_LE(fine.zbt_writes.upper, coarse.zbt_writes.upper);
  // DMA traffic is content-independent: the whole frame still transfers.
  EXPECT_EQ(fine.dma_words_in, coarse.dma_words_in);
  EXPECT_EQ(fine.dma_words_out, coarse.dma_words_out);
  // The 100-pixel segment prices far below the full-frame extreme.  The
  // cycles width shrinks but keeps the margin on the constant setup and
  // streaming terms; the ZBT widths carry no constant and collapse by
  // roughly the area ratio.
  EXPECT_LT(fine.cycles.upper - fine.cycles.lower,
            coarse.cycles.upper - coarse.cycles.lower);
  EXPECT_LT(fine.zbt_reads.upper - fine.zbt_reads.lower,
            (coarse.zbt_reads.upper - coarse.zbt_reads.lower) / 4);
  EXPECT_LT(fine.zbt_writes.upper - fine.zbt_writes.lower,
            (coarse.zbt_writes.upper - coarse.zbt_writes.lower) / 4);
  EXPECT_TRUE(fine.cycles.contains(fine.cycles_estimate));
}

TEST(PlanCall, VacuousCriterionRefinesToTheStaticEnvelope) {
  // AEW305 territory: a criterion that admits everything makes the probe
  // report the whole frame, so content-aware refinement degenerates to the
  // static envelope's upper extremes — the lint, not the planner, is the
  // only help there.
  const Size size{48, 32};
  const img::Image a = img::make_test_frame(size, 11);
  alib::SegmentSpec spec;
  spec.seeds = {Point{4, 4}};
  spec.luma_threshold = 255;
  const Call call =
      Call::make_segment(PixelOp::Copy, Neighborhood::con4(), spec,
                         ChannelMask::y(), ChannelMask::y().with(Channel::Alfa));
  const CostEnvelope coarse = analysis::plan_call(call, size);
  const alib::SegmentReachability reach =
      alib::probe_segment_reachability(a, call.segment);
  EXPECT_EQ(reach.reachable_pixels, static_cast<i64>(size.area()));
  const CostEnvelope fine = analysis::plan_call(call, size, {}, reach);
  EXPECT_EQ(fine.cycles.upper, coarse.cycles.upper);
  EXPECT_EQ(fine.zbt_reads.upper, coarse.zbt_reads.upper);
  EXPECT_EQ(fine.zbt_writes.upper, coarse.zbt_writes.upper);
  // The one admitted seed survives as the probe's lower extreme, though
  // the margin's floor rounds the priced bound back to zero.
  EXPECT_EQ(reach.pushed_seeds, 1);
  EXPECT_GE(fine.zbt_writes.lower, coarse.zbt_writes.lower);
}

TEST(PlanCall, NonSegmentCallsIgnoreReachability) {
  alib::SegmentReachability reach;
  reach.region = Rect{0, 0, 4, 4};
  reach.reachable_pixels = 7;
  reach.pushed_seeds = 1;
  const CostEnvelope base = analysis::plan_call(intra_con8(), kFrame);
  const CostEnvelope with_reach =
      analysis::plan_call(intra_con8(), kFrame, {}, reach);
  EXPECT_EQ(base.cycles.lower, with_reach.cycles.lower);
  EXPECT_EQ(base.cycles.upper, with_reach.cycles.upper);
  EXPECT_EQ(base.cycles_estimate, with_reach.cycles_estimate);
  EXPECT_EQ(base.zbt_reads.upper, with_reach.zbt_reads.upper);
}

TEST(PlanCall, DegenerateFrameYieldsAZeroEnvelope) {
  const CostEnvelope e = analysis::plan_call(intra_con8(), Size{0, 0});
  EXPECT_EQ(e.cycles.upper, 0u);
  EXPECT_EQ(e.dma_words_in, 0u);
  EXPECT_EQ(e.zbt_reads.upper, 0u);
}

TEST(PlanCall, WiderMarginWidensTheBound) {
  PlanOptions narrow;
  narrow.margin = 0.05;
  PlanOptions wide;
  wide.margin = 0.25;
  const CostEnvelope n = analysis::plan_call(intra_con8(), kFrame, narrow);
  const CostEnvelope w = analysis::plan_call(intra_con8(), kFrame, wide);
  EXPECT_LT(w.cycles.lower, n.cycles.lower);
  EXPECT_GT(w.cycles.upper, n.cycles.upper);
  EXPECT_EQ(n.cycles_estimate, w.cycles_estimate);
}

// ---- residency schedule ----------------------------------------------------

TEST(PlanProgram, ClassifiesReuseRelocationAndTransfer) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 b = program.add_input(kFrame, "b");
  const i32 r0 = program.add_call(Call::make_inter(PixelOp::AbsDiff), a, b);
  const i32 r1 = program.add_call(intra_con8(), a);   // a still in its pair
  const i32 r2 = program.add_call(pointwise(), r1);   // r1 sits in result banks
  program.add_call(intra_con8(), b);                  // b was evicted by r1
  program.mark_output(r0);
  program.mark_output(r2);

  const ProgramPlan plan = analysis::plan_program(program);
  ASSERT_EQ(plan.calls.size(), 4u);
  EXPECT_EQ(plan.calls[0].inputs[0].kind, TransferKind::Transferred);
  EXPECT_EQ(plan.calls[0].inputs[1].kind, TransferKind::Transferred);
  EXPECT_EQ(plan.calls[1].inputs[0].kind, TransferKind::Reused);
  EXPECT_EQ(plan.calls[2].inputs[0].kind, TransferKind::Relocated);
  EXPECT_EQ(plan.calls[3].inputs[0].kind, TransferKind::Transferred);

  const u64 words = 2 * static_cast<u64>(kFrame.area());
  EXPECT_EQ(plan.transfers_total, 5);
  EXPECT_EQ(plan.transfers_avoidable, 2);
  EXPECT_EQ(plan.avoidable_words, 2 * words);
  EXPECT_EQ(plan.calls[1].avoidable_words, words);

  // resident_after tracks the interval ends the reorder lint keys on.
  const std::vector<i32>& after0 = plan.calls[0].resident_after;
  EXPECT_NE(std::find(after0.begin(), after0.end(), a), after0.end());
  EXPECT_NE(std::find(after0.begin(), after0.end(), b), after0.end());
  EXPECT_NE(std::find(after0.begin(), after0.end(), r0), after0.end());
}

TEST(PlanProgram, TotalsSumTheCallEnvelopes) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 r0 = program.add_call(intra_con8(), a);
  program.add_call(pointwise(), r0);

  const ProgramPlan plan = analysis::plan_program(program);
  u64 lower = 0;
  u64 upper = 0;
  u64 in_words = 0;
  for (const CallPlan& cp : plan.calls) {
    lower += cp.envelope.cycles.lower;
    upper += cp.envelope.cycles.upper;
    in_words += cp.envelope.dma_words_in;
  }
  EXPECT_EQ(plan.total.cycles.lower, lower);
  EXPECT_EQ(plan.total.cycles.upper, upper);
  EXPECT_EQ(plan.total.dma_words_in, in_words);
  EXPECT_EQ(plan.total.iim_peak_lines, 16);
}

TEST(PlanProgram, InvalidFrameReferencesPriceToZeroWithoutThrowing) {
  CallProgram program;
  program.add_call(pointwise(), 42);  // undeclared frame id
  const ProgramPlan plan = analysis::plan_program(program);
  ASSERT_EQ(plan.calls.size(), 1u);
  EXPECT_EQ(plan.calls[0].envelope.cycles.upper, 0u);
  EXPECT_EQ(plan.calls[0].inputs[0].kind, TransferKind::Transferred);
  EXPECT_EQ(plan.calls[0].inputs[0].words, 0u);
}

// ---- calibration against the backends (golden workloads, tier1) ------------

/// Executes every call of `program` on the given backend and asserts the
/// measured cost lands inside the static envelope.  Frame content is
/// deterministic; outputs feed later calls exactly as a driver would.
void expect_backend_inside_envelope(const CallProgram& program,
                                    core::EngineMode mode) {
  const ProgramPlan plan = analysis::plan_program(program);
  core::EngineBackend backend({}, mode);
  std::vector<img::Image> images(program.frames().size());
  for (std::size_t f = 0; f < program.frames().size(); ++f)
    if (program.frames()[f].producer == analysis::kNoFrame)
      images[f] = img::make_test_frame(program.frames()[f].size, 7 + f);

  for (std::size_t i = 0; i < program.calls().size(); ++i) {
    const analysis::ProgramCall& pc = program.calls()[i];
    SCOPED_TRACE("call " + std::to_string(i) + " [" + to_string(mode) +
                 "]: " + pc.call.describe());
    const img::Image& a = images[static_cast<std::size_t>(pc.input_a)];
    const img::Image* b =
        pc.input_b != analysis::kNoFrame
            ? &images[static_cast<std::size_t>(pc.input_b)]
            : nullptr;
    alib::CallResult result = backend.execute(pc.call, a, b);
    const core::EngineRunStats& run = backend.last_run();
    const CostEnvelope& env = plan.calls[i].envelope;

    EXPECT_TRUE(env.cycles.contains(run.cycles))
        << "cycles " << run.cycles << " outside [" << env.cycles.lower
        << ", " << env.cycles.upper << "]";
    if (mode == core::EngineMode::CycleAccurate) {
      EXPECT_EQ(run.words_in, env.dma_words_in);
      EXPECT_EQ(run.words_out, env.dma_words_out);
      EXPECT_TRUE(env.zbt_reads.contains(run.zbt_read_transactions))
          << run.zbt_read_transactions;
      EXPECT_TRUE(env.zbt_writes.contains(run.zbt_write_transactions))
          << run.zbt_write_transactions;
      const core::ScanSpace space(a.size(), pc.call.scan);
      EXPECT_LE(run.oim_peak,
                static_cast<u64>(env.oim_peak_lines) *
                    static_cast<u64>(space.line_length()));
    }
    images[static_cast<std::size_t>(pc.output)] = std::move(result.output);
  }
}

/// The same three known-good programs `aeverify --golden` checks.
std::vector<CallProgram> golden_programs() {
  std::vector<CallProgram> programs;
  {
    CallProgram p;
    const i32 frame = p.add_input(kFrame, "frame");
    p.mark_output(p.add_call(intra_con8(), frame));
    programs.push_back(std::move(p));
  }
  {
    CallProgram p;
    const i32 cur = p.add_input(Size{64, 48}, "cur");
    const i32 ref = p.add_input(Size{64, 48}, "ref");
    p.mark_output(p.add_call(Call::make_inter(PixelOp::AbsDiff), cur, ref));
    programs.push_back(std::move(p));
  }
  {
    CallProgram p;
    const i32 frame = p.add_input(kFrame, "frame");
    alib::SegmentSpec spec;
    spec.seeds = {Point{4, 4}, Point{30, 20}};
    spec.luma_threshold = 18;
    const i32 seg = p.add_call(
        Call::make_segment(PixelOp::Copy, Neighborhood::con4(), spec,
                           ChannelMask::y(),
                           ChannelMask::y().with(Channel::Alfa)),
        frame);
    p.mark_output(p.add_call(pointwise(), seg));
    programs.push_back(std::move(p));
  }
  return programs;
}

TEST(PlanCalibration, GoldenProgramsLandInsideTheEnvelopeCycleAccurate) {
  for (const CallProgram& program : golden_programs())
    expect_backend_inside_envelope(program, core::EngineMode::CycleAccurate);
}

TEST(PlanCalibration, GoldenProgramsLandInsideTheEnvelopeAnalytic) {
  for (const CallProgram& program : golden_programs())
    expect_backend_inside_envelope(program, core::EngineMode::Analytic);
}

// ---- AEW lints: one positive and one negative case per rule ----------------

bool fires(const CallProgram& program, const char* rule) {
  return analysis::lint_program(program).mentions(rule);
}

TEST(Lints, Aew300RedundantReupload) {
  CallProgram positive;
  const i32 a = positive.add_input(kFrame, "a");
  positive.add_call(intra_con8(), a);
  positive.add_call(pointwise(), a);  // a still resident: reused
  EXPECT_TRUE(fires(positive, analysis::rules::kRedundantReupload));

  CallProgram negative;
  const i32 x = negative.add_input(kFrame, "x");
  const i32 y = negative.add_input(kFrame, "y");
  negative.add_call(intra_con8(), x);
  negative.add_call(intra_con8(), y);  // fresh frame each call: no reuse
  EXPECT_FALSE(fires(negative, analysis::rules::kRedundantReupload));
}

TEST(Lints, Aew301DeadStoreOverwrite) {
  CallProgram positive;
  const i32 a = positive.add_input(kFrame, "a");
  positive.add_call(intra_con8(), a);  // result never read, then overwritten
  const i32 keep = positive.add_call(pointwise(), a);
  positive.mark_output(keep);
  EXPECT_TRUE(fires(positive, analysis::rules::kDeadStoreOverwrite));

  CallProgram negative;  // same shape, but the first result is an output
  const i32 b = negative.add_input(kFrame, "b");
  const i32 r0 = negative.add_call(intra_con8(), b);
  const i32 r1 = negative.add_call(pointwise(), b);
  negative.mark_output(r0);
  negative.mark_output(r1);
  EXPECT_FALSE(fires(negative, analysis::rules::kDeadStoreOverwrite));
}

TEST(Lints, Aew302StripBelowBreakEven) {
  CallProgram positive;  // 16-pixel lines: 603 busy cycles vs 1320 overhead
  const i32 a = positive.add_input(Size{16, 16}, "a");
  positive.mark_output(positive.add_call(pointwise(), a));
  EXPECT_TRUE(fires(positive, analysis::rules::kStripBelowBreakEven));

  CallProgram negative;  // 96-pixel lines amortize the handshake
  const i32 b = negative.add_input(Size{96, 16}, "b");
  negative.mark_output(negative.add_call(pointwise(), b));
  EXPECT_FALSE(fires(negative, analysis::rules::kStripBelowBreakEven));
}

TEST(Lints, Aew303FusablePointwisePair) {
  CallProgram positive;
  const i32 a = positive.add_input(kFrame, "a");
  const i32 r0 = positive.add_call(intra_con8(), a);
  positive.mark_output(positive.add_call(pointwise(), r0));
  EXPECT_TRUE(fires(positive, analysis::rules::kFusablePointwisePair));

  CallProgram negative;  // consumer has a real neighborhood: not fusable
  const i32 b = negative.add_input(kFrame, "b");
  const i32 r1 = negative.add_call(pointwise(), b);
  negative.mark_output(negative.add_call(intra_con8(), r1));
  EXPECT_FALSE(fires(negative, analysis::rules::kFusablePointwisePair));

  CallProgram kept;  // intermediate is also a program output: not fusable
  const i32 c = kept.add_input(kFrame, "c");
  const i32 r2 = kept.add_call(intra_con8(), c);
  kept.mark_output(r2);
  kept.mark_output(kept.add_call(pointwise(), r2));
  EXPECT_FALSE(fires(kept, analysis::rules::kFusablePointwisePair));
}

TEST(Lints, Aew304ReorderForReuse) {
  CallProgram positive;
  const i32 a = positive.add_input(kFrame, "a");
  const i32 b = positive.add_input(kFrame, "b");
  const i32 c = positive.add_input(kFrame, "c");
  positive.add_call(intra_con8(), a);
  positive.add_call(Call::make_inter(PixelOp::AbsDiff), b, c);  // evicts a
  positive.add_call(pointwise(), a);  // hoistable next to call 0
  EXPECT_TRUE(fires(positive, analysis::rules::kReorderForReuse));

  CallProgram negative;  // the late consumer also needs the evictor's result
  const i32 x = negative.add_input(kFrame, "x");
  const i32 y = negative.add_input(kFrame, "y");
  const i32 z = negative.add_input(kFrame, "z");
  negative.add_call(intra_con8(), x);
  const i32 r = negative.add_call(Call::make_inter(PixelOp::AbsDiff), y, z);
  negative.add_call(Call::make_inter(PixelOp::AbsDiff), x, r);
  EXPECT_FALSE(fires(negative, analysis::rules::kReorderForReuse));
}

TEST(Lints, Aew305SegmentVacuousCriterion) {
  const auto segment_program = [](i32 luma, i32 chroma) {
    CallProgram p;
    const i32 frame = p.add_input(kFrame, "frame");
    alib::SegmentSpec spec;
    spec.seeds = {Point{4, 4}};
    spec.luma_threshold = luma;
    spec.chroma_threshold = chroma;
    p.mark_output(p.add_call(
        Call::make_segment(PixelOp::Copy, Neighborhood::con4(), spec,
                           ChannelMask::y(),
                           ChannelMask::y().with(Channel::Alfa)),
        frame));
    return p;
  };
  EXPECT_TRUE(fires(segment_program(255, -1),
                    analysis::rules::kSegmentVacuousCriterion));
  EXPECT_TRUE(fires(segment_program(400, 300),
                    analysis::rules::kSegmentVacuousCriterion));
  EXPECT_FALSE(fires(segment_program(16, -1),
                     analysis::rules::kSegmentVacuousCriterion));
  EXPECT_FALSE(fires(segment_program(255, 20),
                     analysis::rules::kSegmentVacuousCriterion));
}

TEST(Lints, EveryAewRuleIsInTheCatalogAsAWarning) {
  const char* const kAewRules[] = {
      analysis::rules::kRedundantReupload,
      analysis::rules::kDeadStoreOverwrite,
      analysis::rules::kStripBelowBreakEven,
      analysis::rules::kFusablePointwisePair,
      analysis::rules::kReorderForReuse,
      analysis::rules::kSegmentVacuousCriterion,
      analysis::rules::kRangeIdentityOp,
      analysis::rules::kAllocatableResidency,
  };
  for (const char* id : kAewRules) {
    bool found = false;
    for (const analysis::rules::RuleInfo& rule : analysis::rules::catalog())
      if (std::string(rule.id) == id) {
        found = true;
        EXPECT_EQ(rule.severity, analysis::Severity::Warning) << id;
      }
    EXPECT_TRUE(found) << id;
  }
}

TEST(Lints, LintsNeverChangeTheDefaultExitCode) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  program.add_call(intra_con8(), a);
  program.add_call(pointwise(), a);  // AEW300 fires
  Report report = analysis::verify_program(program);
  report.merge(analysis::lint_program(program));
  EXPECT_TRUE(report.mentions(analysis::rules::kRedundantReupload));
  EXPECT_EQ(report.exit_code(/*strict=*/false), analysis::kExitClean);
  EXPECT_EQ(report.exit_code(/*strict=*/true), analysis::kExitErrors);
}

// ---- JSON renderings: the schema is pinned here ----------------------------

TEST(Json, QuoteEscapesTheJsonEscapeSet) {
  EXPECT_EQ(analysis::json_quote("plain"), "\"plain\"");
  EXPECT_EQ(analysis::json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(analysis::json_quote("line\nbreak\tand\rcr"),
            "\"line\\nbreak\\tand\\rcr\"");
  EXPECT_EQ(analysis::json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Json, ReportSchemaIsPinned) {
  Report report;
  report.add(analysis::Severity::Error, "AEV200", 3, "msg", "hint");
  report.add(analysis::Severity::Warning, "AEW300", analysis::kProgramScope,
             "warn");
  EXPECT_EQ(analysis::report_json(report),
            "{\"errors\":1,\"warnings\":1,\"diagnostics\":["
            "{\"rule\":\"AEV200\",\"severity\":\"error\",\"call\":3,"
            "\"message\":\"msg\",\"fix_hint\":\"hint\"},"
            "{\"rule\":\"AEW300\",\"severity\":\"warning\",\"call\":-1,"
            "\"message\":\"warn\"}]}");
}

TEST(Json, PlanSchemaIsPinned) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  program.mark_output(program.add_call(pointwise(), a));
  const ProgramPlan plan = analysis::plan_program(program);
  const std::string json = analysis::plan_json(plan, program);
  // Structural keys, not values: the numbers move with the cost model, the
  // schema must not.
  for (const char* key :
       {"{\"calls\":[{\"index\":0,\"output\":", "\"mode\":\"intra\"",
        "\"cycles\":{\"lower\":", "\"estimate\":", "\"dma_words\":{\"in\":",
        "\"zbt_reads\":{\"lower\":", "\"zbt_writes\":{\"lower\":",
        "\"iim_peak_lines\":", "\"oim_peak_lines\":",
        "\"inputs\":[{\"frame\":\"a\",\"kind\":\"transferred\",\"words\":",
        "\"avoidable_words\":", "\"total\":{", "\"transfers\":{\"total\":1,"
        "\"avoidable\":0,\"avoidable_words\":0}"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in " << json;
  }
}

TEST(Json, TransferKindNames) {
  EXPECT_EQ(analysis::to_string(TransferKind::Transferred), "transferred");
  EXPECT_EQ(analysis::to_string(TransferKind::Reused), "reused");
  EXPECT_EQ(analysis::to_string(TransferKind::Relocated), "relocated");
}

TEST(Format, PlanTableRendersCallsAndTotals) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  program.mark_output(program.add_call(pointwise(), a));
  const ProgramPlan plan = analysis::plan_program(program);
  const std::string text = plan.format(program);
  EXPECT_NE(text.find("call 0"), std::string::npos);
  EXPECT_NE(text.find("a:transferred"), std::string::npos);
  EXPECT_NE(text.find("total: cycles=["), std::string::npos);
}

}  // namespace
}  // namespace ae
