// aeopt — the envelope-proven program rewriter (analysis/optimizer.hpp).
//
// Tier1 (everything not matching *Fuzz*): per-rewrite positive AND negative
// cases, the dominance tiers pinned numerically against plan_program, the
// RewriteLog JSON schema, the fuse= text round trip, the fused-stage
// verifier rules, and the farm's optimize_on_submit wiring.  Every applied
// rewrite is held to bit-exactness on both the kernel backend and the
// cycle-accurate engine simulator.
//
// Tier2 (OptimizerFuzz*): the differential rewrite-fuzz harness — the full
// 520-program corpus (8x40 differential seeds + 200 farm cases) replayed
// through aeopt as one-call programs, plus fusion-biased multi-call
// programs, asserting bit-exact outputs, zero aeverify regressions, and the
// RewriteLog's claimed cycle delta containing the measured modeled delta.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "addresslib/kernels/kernel_backend.hpp"
#include "analysis/lints.hpp"
#include "analysis/optimizer.hpp"
#include "analysis/program_text.hpp"
#include "analysis/rules.hpp"
#include "common/parallel.hpp"
#include "core/core.hpp"
#include "serve/farm.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::Neighborhood;
using alib::PixelOp;
using analysis::CallProgram;
using analysis::kNoFrame;
using analysis::OptimizeOptions;
using analysis::OptimizeResult;
using analysis::ProgramPlan;
using analysis::ProgramRunResult;
using analysis::RewriteLog;
using analysis::RewriteRecord;

constexpr Size kFrame{48, 32};
constexpr u64 kFrameWords = 2 * 48 * 32;  // one frame as PCI words

Call intra_con8() {
  return Call::make_intra(PixelOp::GradientMag, Neighborhood::con8());
}

Call pointwise_threshold(i32 threshold = 10) {
  alib::OpParams p;
  p.threshold = threshold;
  return Call::make_intra(PixelOp::Threshold, Neighborhood::con0(),
                          ChannelMask::y(), ChannelMask::y(), p);
}

Call pointwise_scale() {
  alib::OpParams p;
  p.scale_num = 3;
  p.shift = 1;
  p.bias = 7;
  return Call::make_intra(PixelOp::Scale, Neighborhood::con0(),
                          ChannelMask::y(), ChannelMask::y(), p);
}

/// External inputs for `program` in frame-declaration order.
std::vector<img::Image> external_inputs(const CallProgram& program,
                                        Rng& rng) {
  std::vector<img::Image> inputs;
  for (const analysis::FrameDecl& decl : program.frames())
    if (decl.producer == kNoFrame)
      inputs.push_back(img::make_test_frame(decl.size, rng.next_u64()));
  return inputs;
}

/// The optimizer's observation-equivalence contract: declared outputs
/// bit-exact in outputs() order, merged side accumulators equal, segment
/// records preserved keyed by id (reorders permute their arrival order).
void expect_runs_equal(const ProgramRunResult& ref,
                       const ProgramRunResult& out) {
  ASSERT_EQ(ref.outputs.size(), out.outputs.size());
  for (std::size_t i = 0; i < ref.outputs.size(); ++i) {
    SCOPED_TRACE("output " + std::to_string(i));
    test::expect_images_equal(ref.outputs[i], out.outputs[i]);
  }
  EXPECT_EQ(ref.side.sad, out.side.sad);
  EXPECT_EQ(ref.side.histogram, out.side.histogram);
  EXPECT_EQ(ref.side.gme, out.side.gme);
  EXPECT_EQ(ref.side.gme_affine, out.side.gme_affine);
  auto sorted = [](std::vector<alib::SegmentInfo> s) {
    std::sort(s.begin(), s.end(),
              [](const alib::SegmentInfo& a, const alib::SegmentInfo& b) {
                return a.id < b.id;
              });
    return s;
  };
  const std::vector<alib::SegmentInfo> rs = sorted(ref.segments);
  const std::vector<alib::SegmentInfo> os = sorted(out.segments);
  ASSERT_EQ(rs.size(), os.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].id, os[i].id) << "segment " << i;
    EXPECT_EQ(rs[i].pixel_count, os[i].pixel_count) << "segment " << i;
    EXPECT_EQ(rs[i].sum_y, os[i].sum_y) << "segment " << i;
  }
}

/// Runs original and rewritten on `backend` and asserts the equivalence
/// contract.  With `check_claims` (engine backends only — CallStats::cycles
/// is zero everywhere else) the claimed cycle envelope must also contain the
/// measured modeled delta: plan soundness carries through every rewrite.
void expect_bit_exact(const CallProgram& original, const OptimizeResult& opt,
                      alib::Backend& backend, Rng& rng,
                      bool check_claims = false) {
  const std::vector<img::Image> inputs = external_inputs(original, rng);
  const ProgramRunResult ref =
      analysis::run_program(original, backend, inputs);
  const ProgramRunResult out =
      analysis::run_program(opt.program, backend, inputs);
  expect_runs_equal(ref, out);
  if (!check_claims) return;
  const i64 measured = static_cast<i64>(ref.stats.cycles) -
                       static_cast<i64>(out.stats.cycles);
  EXPECT_GE(measured, static_cast<i64>(opt.log.claimed_cycles_bound.lower))
      << "claimed envelope does not contain the measured saving";
  EXPECT_LE(measured, static_cast<i64>(opt.log.claimed_cycles_bound.upper))
      << "claimed envelope does not contain the measured saving";
}

/// run_program wants the Backend interface; KernelBackend exposes the same
/// execute shape without deriving from it, so the tests adapt it.
class KernelBackendAdapter : public alib::Backend {
 public:
  explicit KernelBackendAdapter(alib::KernelOptions options)
      : kernels_(options) {}
  std::string name() const override { return "kernels"; }
  alib::CallResult execute(const alib::Call& call, const img::Image& a,
                           const img::Image* b = nullptr) override {
    return kernels_.execute(call, a, b);
  }

 private:
  alib::KernelBackend kernels_;
};

u64 transferred_words(const ProgramPlan& plan) {
  u64 words = 0;
  for (const analysis::CallPlan& cp : plan.calls)
    for (const analysis::InputPlan& ip : cp.inputs)
      if (ip.kind == analysis::TransferKind::Transferred) words += ip.words;
  return words;
}

// ---- fuse (AEW303) ---------------------------------------------------------

TEST(Fuse, FoldsAPointwiseConsumerBitExactly) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 grad = program.add_call(intra_con8(), a);
  program.mark_output(program.add_call(pointwise_threshold(40), grad));

  const OptimizeResult opt = analysis::optimize_program(program);
  ASSERT_TRUE(opt.changed);
  ASSERT_EQ(opt.log.records.size(), 1u);
  const RewriteRecord& r = opt.log.records[0];
  EXPECT_EQ(r.rule, analysis::rules::kFusablePointwisePair);
  EXPECT_EQ(r.kind, "fuse");
  EXPECT_EQ(r.calls, (std::vector<i32>{0, 1}));
  ASSERT_EQ(opt.program.calls().size(), 1u);
  ASSERT_EQ(opt.program.calls()[0].call.fused.size(), 1u);
  EXPECT_EQ(opt.program.calls()[0].call.fused[0].op, PixelOp::Threshold);
  EXPECT_EQ(analysis::verify_program(opt.program).error_count(), 0u);

  Rng rng(0xF05Eu);
  par::ThreadPool pool(2);
  KernelBackendAdapter kernels({&pool, 4});
  expect_bit_exact(program, opt, kernels, rng);
  core::EngineBackend engine({}, core::EngineMode::CycleAccurate);
  expect_bit_exact(program, opt, engine, rng, /*check_claims=*/true);
}

TEST(Fuse, AWholeChainCollapsesToOneCall) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  i32 f = program.add_call(intra_con8(), a);
  f = program.add_call(pointwise_scale(), f);
  f = program.add_call(pointwise_threshold(90), f);
  f = program.add_call(Call::make_intra(PixelOp::Copy, Neighborhood::con0()),
                       f);
  program.mark_output(f);

  const OptimizeResult opt = analysis::optimize_program(program);
  ASSERT_EQ(opt.program.calls().size(), 1u);
  EXPECT_EQ(opt.program.calls()[0].call.fused.size(), 3u);
  EXPECT_EQ(opt.log.records.size(), 3u);
  // The surviving result keeps the final consumer's frame name.
  EXPECT_EQ(opt.program.frame_name(opt.program.calls()[0].output),
            program.frame_name(f));

  Rng rng(0xC4A17u);
  par::ThreadPool pool(2);
  KernelBackendAdapter kernels({&pool, 4});
  expect_bit_exact(program, opt, kernels, rng);
}

TEST(Fuse, RefusesAHostCollectedIntermediate) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 grad = program.add_call(intra_con8(), a);
  program.mark_output(grad);  // the host reads the intermediate
  program.mark_output(program.add_call(pointwise_threshold(), grad));

  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);
  EXPECT_EQ(opt.program.calls().size(), 2u);
}

TEST(Fuse, RefusesAMultiConsumerIntermediate) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 grad = program.add_call(intra_con8(), a);
  program.mark_output(program.add_call(pointwise_threshold(10), grad));
  program.mark_output(program.add_call(pointwise_threshold(20), grad));

  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);
}

// Satellite regression of the AEW303 soundness fix: a segment producer is
// NOT fusable — its output contains wholesale-copied unprocessed pixels a
// fused stage would never touch, and segment ids land in Alfa only after
// the kernel ran.  The lint and the rewrite share one predicate, so both
// must refuse.
TEST(Fuse, RefusesASegmentProducer) {
  CallProgram program;
  const i32 frame = program.add_input(kFrame, "frame");
  alib::SegmentSpec spec;
  spec.seeds = {Point{4, 4}, Point{30, 20}};
  spec.luma_threshold = 18;
  const i32 seg = program.add_call(
      Call::make_segment(PixelOp::Copy, Neighborhood::con4(), spec,
                         ChannelMask::y(),
                         ChannelMask::y().with(Channel::Alfa)),
      frame);
  program.mark_output(program.add_call(pointwise_threshold(), seg));

  EXPECT_FALSE(analysis::fusable_pointwise_pair(program, 0));
  EXPECT_FALSE(
      analysis::lint_program(program)
          .mentions(analysis::rules::kFusablePointwisePair));
  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);
  EXPECT_EQ(opt.program.calls().size(), 2u);
}

// Second soundness regression: a pointwise call that references the
// producer's result only through its ignored second input is not a real
// dataflow edge — fusing on it would compute from the wrong frame.
TEST(Fuse, RefusesAnIgnoredSecondInputReference) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 grad = program.add_call(intra_con8(), a);
  // Reads `a`; `grad` only appears as the ignored second input.
  program.mark_output(program.add_call(pointwise_threshold(), a, grad));

  EXPECT_FALSE(analysis::fusable_pointwise_pair(program, 0));
  EXPECT_FALSE(
      analysis::lint_program(program)
          .mentions(analysis::rules::kFusablePointwisePair));
}

// ---- dead-elim (AEW301) ----------------------------------------------------

TEST(DeadElim, DropsAnUnreadResult) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  program.add_call(intra_con8(), a);  // never read, host never collects
  program.mark_output(program.add_call(pointwise_threshold(), a));

  const OptimizeResult opt = analysis::optimize_program(program);
  ASSERT_TRUE(opt.changed);
  ASSERT_EQ(opt.log.records.size(), 1u);
  EXPECT_EQ(opt.log.records[0].rule, analysis::rules::kDeadStoreOverwrite);
  EXPECT_EQ(opt.log.records[0].kind, "dead-elim");
  ASSERT_EQ(opt.program.calls().size(), 1u);
  EXPECT_EQ(opt.program.calls()[0].call.op, PixelOp::Threshold);

  Rng rng(0xDEADu);
  par::ThreadPool pool(2);
  KernelBackendAdapter kernels({&pool, 4});
  expect_bit_exact(program, opt, kernels, rng);
  core::EngineBackend engine({}, core::EngineMode::CycleAccurate);
  expect_bit_exact(program, opt, engine, rng, /*check_claims=*/true);
}

TEST(DeadElim, KeepsCallsWithSidePortResults) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  // Result frame dead, but the histogram accumulator is host-observable.
  program.add_call(
      Call::make_intra(PixelOp::Histogram, Neighborhood::con0()), a);
  program.mark_output(program.add_call(pointwise_threshold(), a));

  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);
  EXPECT_EQ(opt.program.calls().size(), 2u);
}

TEST(DeadElim, KeepsSegmentCalls) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  alib::SegmentSpec spec;
  spec.seeds = {Point{4, 4}};
  spec.luma_threshold = 20;
  program.add_call(
      Call::make_segment(PixelOp::Copy, Neighborhood::con4(), spec,
                         ChannelMask::y(),
                         ChannelMask::y().with(Channel::Alfa)),
      a);  // dead frame, but its segment-table records are observable
  program.mark_output(program.add_call(pointwise_threshold(), a));

  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);
}

// ---- range (AEW306) --------------------------------------------------------

/// in -> flat = Threshold(255) (Y proven 0) -> sum = Add(in, flat): the
/// value domain proves the Add writes back exactly `in`.
Call threshold_const_zero() { return pointwise_threshold(255); }

TEST(Range, DropsAProvenIdentityBitExactly) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 flat = program.add_call(threshold_const_zero(), a);
  const i32 sum = program.add_call(Call::make_inter(PixelOp::Add), a, flat);
  program.mark_output(program.add_call(pointwise_scale(), sum));

  const OptimizeResult opt = analysis::optimize_program(program);
  ASSERT_TRUE(opt.changed);
  // The identity Add is dropped by the range tier; the then-dead Threshold
  // falls to dead-elim.  The scale consumer survives, re-pointed at the
  // external input.
  ASSERT_EQ(opt.program.calls().size(), 1u);
  EXPECT_EQ(opt.program.calls()[0].call.op, PixelOp::Scale);
  EXPECT_EQ(opt.program.calls()[0].input_a, a);
  bool saw_range = false;
  for (const RewriteRecord& r : opt.log.records) {
    if (r.kind != "range") continue;
    saw_range = true;
    EXPECT_EQ(r.rule, analysis::rules::kRangeIdentityOp);
    EXPECT_EQ(r.tier, "range");
    EXPECT_EQ(r.calls, (std::vector<i32>{1}));
    EXPECT_NE(r.note.find("b proven == 0"), std::string::npos) << r.note;
  }
  EXPECT_TRUE(saw_range);
  EXPECT_EQ(analysis::verify_program(opt.program).error_count(), 0u);

  Rng rng(0xA306u);
  par::ThreadPool pool(2);
  KernelBackendAdapter kernels({&pool, 4});
  expect_bit_exact(program, opt, kernels, rng);
  core::EngineBackend engine({}, core::EngineMode::CycleAccurate);
  expect_bit_exact(program, opt, engine, rng, /*check_claims=*/true);
}

TEST(Range, StackedIdentitiesCollapseThroughTheAliasChain) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 flat = program.add_call(threshold_const_zero(), a);
  const i32 s1 = program.add_call(Call::make_inter(PixelOp::Add), a, flat);
  const i32 s2 = program.add_call(Call::make_inter(PixelOp::Add), s1, flat);
  program.mark_output(program.add_call(pointwise_scale(), s2));

  const OptimizeResult opt = analysis::optimize_program(program);
  ASSERT_TRUE(opt.changed);
  ASSERT_EQ(opt.program.calls().size(), 1u);
  EXPECT_EQ(opt.program.calls()[0].call.op, PixelOp::Scale);
  // Both drops re-point their consumers through the frame-alias chain all
  // the way back to the external input.
  EXPECT_EQ(opt.program.calls()[0].input_a, a);
  int range_drops = 0;
  for (const RewriteRecord& r : opt.log.records)
    if (r.kind == "range") ++range_drops;
  EXPECT_EQ(range_drops, 2);

  Rng rng(0xA307u);
  par::ThreadPool pool(2);
  KernelBackendAdapter kernels({&pool, 4});
  expect_bit_exact(program, opt, kernels, rng);
}

TEST(Range, KeepsAHostCollectedIdentity) {
  // The identity's result IS a declared output: re-pointing a host-visible
  // result at an external input frame is out of surgery's contract.
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  program.mark_output(program.add_call(
      Call::make_intra(PixelOp::Copy, Neighborhood::con0()), a));

  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);
  EXPECT_EQ(opt.program.calls().size(), 1u);
}

TEST(Range, CanBeDisabled) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 flat = program.add_call(threshold_const_zero(), a);
  const i32 sum = program.add_call(Call::make_inter(PixelOp::Add), a, flat);
  program.mark_output(program.add_call(pointwise_scale(), sum));

  OptimizeOptions no_range;
  no_range.range = false;
  const OptimizeResult opt = analysis::optimize_program(program, no_range);
  for (const RewriteRecord& r : opt.log.records) EXPECT_NE(r.kind, "range");
  bool add_survives = false;
  for (const analysis::ProgramCall& pc : opt.program.calls())
    add_survives = add_survives || pc.call.op == PixelOp::Add;
  EXPECT_TRUE(add_survives);
}

TEST(Range, DomainHintsStampClampFreeOnTheFinalProgram) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 b = program.add_input(kFrame, "b");
  alib::OpParams mult;
  mult.shift = 8;  // raw peak 255*255 >> 8 = 254: proven clamp-free
  program.mark_output(program.add_call(
      Call::make_inter(PixelOp::Mult, ChannelMask::y(), ChannelMask::y(),
                       mult),
      a, b));

  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);  // hints are advisory, not a rewrite
  EXPECT_TRUE(opt.program.calls()[0].call.clamp_free.contains(Channel::Y));

  OptimizeOptions no_hints;
  no_hints.domain_hints = false;
  EXPECT_TRUE(analysis::optimize_program(program, no_hints)
                  .program.calls()[0]
                  .call.clamp_free.empty());
}

// ---- reorder (AEW304) ------------------------------------------------------

TEST(Reorder, HoistsARecoverableReuse) {
  CallProgram program;
  const i32 x = program.add_input(kFrame, "x");
  const i32 y = program.add_input(kFrame, "y");
  const i32 z = program.add_input(kFrame, "z");
  program.mark_output(program.add_call(intra_con8(), x));
  program.mark_output(
      program.add_call(Call::make_inter(PixelOp::AbsDiff), y, z));
  program.mark_output(program.add_call(pointwise_threshold(), x));

  const OptimizeResult opt = analysis::optimize_program(program);
  ASSERT_TRUE(opt.changed);
  ASSERT_EQ(opt.log.records.size(), 1u);
  const RewriteRecord& r = opt.log.records[0];
  EXPECT_EQ(r.rule, analysis::rules::kReorderForReuse);
  EXPECT_EQ(r.kind, "reorder");
  EXPECT_EQ(r.tier, "residency");
  // The residency tier claims zero cycles and exactly the recovered words.
  EXPECT_EQ(r.claimed_cycles_delta, 0);
  EXPECT_EQ(r.claimed_cycles_bound.lower, 0u);
  EXPECT_EQ(r.claimed_cycles_bound.upper, 0u);
  EXPECT_EQ(r.claimed_pci_words_delta, static_cast<i64>(kFrameWords));
  // The pointwise consumer of x now directly follows x's first use.
  ASSERT_EQ(opt.program.calls().size(), 3u);
  EXPECT_EQ(opt.program.calls()[1].call.op, PixelOp::Threshold);

  Rng rng(0x2E0Du);
  par::ThreadPool pool(2);
  KernelBackendAdapter kernels({&pool, 4});
  expect_bit_exact(program, opt, kernels, rng);
  // The [0, 0] cycle claim is literal: the permutation must not move the
  // measured modeled cycles at all.
  core::EngineBackend engine({}, core::EngineMode::CycleAccurate);
  expect_bit_exact(program, opt, engine, rng, /*check_claims=*/true);
}

// The dominance refusal, pinned numerically: hoisting is dependence-legal
// and the lint flags it, but the hoisted call lands between a producer and
// the consumer that relocated its result, converting that Relocated input
// into a Transferred one of exactly the recovered size.  Transferred words
// do not strictly decrease (9216 == 9216 for 48x32 frames), so the
// residency proof refuses.
TEST(Reorder, RefusesWhenTransferredWordsDoNotDecrease) {
  CallProgram program;
  const i32 w = program.add_input(kFrame, "w");
  const i32 x = program.add_input(kFrame, "x");
  program.mark_output(program.add_call(pointwise_threshold(1), x));
  program.mark_output(program.add_call(pointwise_threshold(2), w));
  const i32 a2 = program.add_call(pointwise_threshold(3), w);
  program.mark_output(a2);
  program.mark_output(program.add_call(intra_con8(), a2));
  program.mark_output(program.add_call(pointwise_threshold(4), x));

  // The lint proposes the hoist...
  EXPECT_TRUE(analysis::lint_program(program)
                  .mentions(analysis::rules::kReorderForReuse));

  // ...but the rewritten order moves exactly as many words as it saves.
  CallProgram hoisted;
  const i32 hw = hoisted.add_input(kFrame, "w");
  const i32 hx = hoisted.add_input(kFrame, "x");
  hoisted.mark_output(hoisted.add_call(pointwise_threshold(1), hx));
  hoisted.mark_output(hoisted.add_call(pointwise_threshold(2), hw));
  const i32 ha2 = hoisted.add_call(pointwise_threshold(3), hw);
  hoisted.mark_output(ha2);
  hoisted.mark_output(hoisted.add_call(pointwise_threshold(4), hx));
  hoisted.mark_output(hoisted.add_call(intra_con8(), ha2));
  const u64 before = transferred_words(analysis::plan_program(program));
  const u64 after = transferred_words(analysis::plan_program(hoisted));
  EXPECT_EQ(before, 3 * kFrameWords);
  EXPECT_EQ(after, 3 * kFrameWords);

  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);
  EXPECT_TRUE(opt.log.records.empty());
  EXPECT_EQ(opt.log.rejected, 1);
}

// ---- dominance tiers pinned against plan_program ---------------------------

TEST(Dominance, ProvenTierClaimsTheWholePlanDelta) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 grad = program.add_call(intra_con8(), a);
  program.mark_output(program.add_call(pointwise_threshold(40), grad));

  const OptimizeResult opt = analysis::optimize_program(program);
  ASSERT_EQ(opt.log.records.size(), 1u);
  const RewriteRecord& r = opt.log.records[0];
  ASSERT_EQ(r.tier, "proven");
  // Dropping one of two calls dominates unconditionally: the one-call
  // rewrite's upper bound sits below the two-call lower bound, and the
  // claimed envelope is exactly the plan difference.
  const ProgramPlan before = analysis::plan_program(program);
  const ProgramPlan after = analysis::plan_program(opt.program);
  ASSERT_LE(after.total.cycles.upper, before.total.cycles.lower);
  EXPECT_EQ(r.claimed_cycles_delta,
            static_cast<i64>(before.total.cycles_estimate) -
                static_cast<i64>(after.total.cycles_estimate));
  EXPECT_EQ(r.claimed_cycles_bound.lower,
            before.total.cycles.lower - after.total.cycles.upper);
  EXPECT_EQ(r.claimed_cycles_bound.upper,
            before.total.cycles.upper - after.total.cycles.lower);
}

TEST(Dominance, StructuralTierFiresWhenProvenCannot) {
  // Six calls, one dead: removing it cannot prove unconditional dominance
  // (five upper bounds exceed six lower bounds at the 10% margin), but the
  // survivors' envelopes are untouched, so the structural tier admits the
  // rewrite and claims exactly the removed call's envelope.
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  program.mark_output(program.add_call(intra_con8(), a));
  program.mark_output(program.add_call(intra_con8(), a));
  program.mark_output(program.add_call(intra_con8(), a));
  program.add_call(pointwise_threshold(), a);  // dead
  program.mark_output(program.add_call(intra_con8(), a));
  program.mark_output(program.add_call(intra_con8(), a));

  const ProgramPlan before = analysis::plan_program(program);
  const OptimizeResult opt = analysis::optimize_program(program);
  ASSERT_EQ(opt.log.records.size(), 1u);
  const RewriteRecord& r = opt.log.records[0];
  EXPECT_EQ(r.kind, "dead-elim");
  ASSERT_EQ(r.tier, "structural");
  const ProgramPlan after = analysis::plan_program(opt.program);
  ASSERT_GT(after.total.cycles.upper, before.total.cycles.lower)
      << "scenario no longer defeats the proven tier";
  const analysis::CostEnvelope& removed = before.calls[3].envelope;
  EXPECT_EQ(r.claimed_cycles_delta,
            static_cast<i64>(removed.cycles_estimate));
  EXPECT_EQ(r.claimed_cycles_bound.lower, removed.cycles.lower);
  EXPECT_EQ(r.claimed_cycles_bound.upper, removed.cycles.upper);
  EXPECT_EQ(r.claimed_pci_words_delta,
            static_cast<i64>(removed.dma_words_in + removed.dma_words_out));

  Rng rng(0x57A7u);
  core::EngineBackend engine({}, core::EngineMode::Analytic);
  expect_bit_exact(program, opt, engine, rng, /*check_claims=*/true);
}

TEST(Dominance, IllFormedProgramsComeBackUnchanged) {
  CallProgram program;
  program.add_input(kFrame, "a");
  // Reads a frame that is never produced (AEV200) — and its consumer would
  // otherwise look perfectly fusable.
  const i32 ghost = 7;
  const i32 r0 = program.add_call(intra_con8(), ghost);
  program.mark_output(program.add_call(pointwise_threshold(), r0));

  ASSERT_TRUE(analysis::verify_program(program).has_errors());
  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);
  EXPECT_TRUE(opt.log.records.empty());
  EXPECT_EQ(opt.program.calls().size(), 2u);
}

// ---- per-class switches ----------------------------------------------------

TEST(Options, ClassesCanBeDisabledIndependently) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  program.add_call(intra_con8(), a);  // dead
  const i32 grad = program.add_call(intra_con8(), a);
  program.mark_output(program.add_call(pointwise_threshold(), grad));

  OptimizeOptions no_dead;
  no_dead.dead_elim = false;
  const OptimizeResult opt = analysis::optimize_program(program, no_dead);
  ASSERT_EQ(opt.log.records.size(), 1u);
  EXPECT_EQ(opt.log.records[0].kind, "fuse");
  EXPECT_EQ(opt.program.calls().size(), 2u);  // the dead call survives

  OptimizeOptions none;
  none.dead_elim = none.range = none.fuse = none.reorder = false;
  EXPECT_FALSE(analysis::optimize_program(program, none).changed);
}

// ---- RewriteLog JSON schema (pinned, like report_json / plan_json) ---------

TEST(Json, RewriteLogSchemaIsPinned) {
  RewriteLog log;
  RewriteRecord r;
  r.rule = "AEW303";
  r.kind = "fuse";
  r.tier = "proven";
  r.calls = {0, 1};
  r.claimed_cycles_delta = 10;
  r.claimed_cycles_bound = analysis::CostBound{5, 15};
  r.claimed_pci_words_delta = 64;
  r.note = "n";
  log.records.push_back(r);
  log.claimed_cycles_delta = 10;
  log.claimed_cycles_bound = analysis::CostBound{5, 15};
  log.claimed_pci_words_delta = 64;
  log.rejected = 2;
  EXPECT_EQ(analysis::rewrite_log_json(log),
            "{\"rewrites\":[{\"rule\":\"AEW303\",\"kind\":\"fuse\","
            "\"tier\":\"proven\",\"calls\":[0,1],"
            "\"claimed_cycles\":{\"estimate\":10,\"lower\":5,\"upper\":15},"
            "\"claimed_pci_words\":64,\"note\":\"n\"}],"
            "\"claimed_cycles\":{\"estimate\":10,\"lower\":5,\"upper\":15},"
            "\"claimed_pci_words\":64,\"applied\":1,\"rejected\":2}");
  EXPECT_EQ(analysis::rewrite_log_json(RewriteLog{}),
            "{\"rewrites\":[],"
            "\"claimed_cycles\":{\"estimate\":0,\"lower\":0,\"upper\":0},"
            "\"claimed_pci_words\":0,\"applied\":0,\"rejected\":0}");
}

// ---- fuse= text round trip -------------------------------------------------

TEST(Text, FusedStagesRoundTripThroughTheTextForm) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  i32 f = program.add_call(intra_con8(), a);
  f = program.add_call(pointwise_scale(), f);
  f = program.add_call(pointwise_threshold(90), f);
  program.mark_output(f);

  const OptimizeResult opt = analysis::optimize_program(program);
  ASSERT_EQ(opt.program.calls().size(), 1u);
  const std::string text = analysis::format_program(opt.program);
  EXPECT_NE(text.find("fuse="), std::string::npos);
  const CallProgram parsed = analysis::parse_program(text);
  EXPECT_EQ(analysis::format_program(parsed), text);
  ASSERT_EQ(parsed.calls().size(), 1u);
  EXPECT_EQ(parsed.calls()[0].call.fused, opt.program.calls()[0].call.fused);
}

// ---- fused-stage verifier rules --------------------------------------------

analysis::Report verify_single(const Call& call) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  program.mark_output(program.add_call(call, a));
  return analysis::verify_program(program);
}

alib::FusedStage stage_of(PixelOp op) {
  alib::FusedStage s;
  s.op = op;
  s.params.threshold = 10;
  return s;
}

TEST(VerifierFused, SegmentCallsCannotCarryFusedStages) {
  alib::SegmentSpec spec;
  spec.seeds = {Point{4, 4}};
  spec.luma_threshold = 20;
  Call call = Call::make_segment(PixelOp::Copy, Neighborhood::con0(), spec,
                                 ChannelMask::y(),
                                 ChannelMask::y().with(Channel::Alfa));
  call.fused.push_back(stage_of(PixelOp::Threshold));
  const analysis::Report report = verify_single(call);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.mentions(analysis::rules::kModeOpMismatch));
}

TEST(VerifierFused, StagesMustBePointwise) {
  Call call = intra_con8();
  call.fused.push_back(stage_of(PixelOp::AbsDiff));  // inter-only op
  EXPECT_TRUE(verify_single(call).mentions(analysis::rules::kModeOpMismatch));

  Call grad = intra_con8();
  grad.fused.push_back(stage_of(PixelOp::GradientMag));  // needs neighbors
  EXPECT_TRUE(verify_single(grad).mentions(analysis::rules::kOpParamsInvalid));
}

TEST(VerifierFused, StageParamsAreChecked) {
  Call shift = intra_con8();
  shift.fused.push_back(stage_of(PixelOp::Scale));
  shift.fused.back().params.shift = 40;
  EXPECT_TRUE(
      verify_single(shift).mentions(analysis::rules::kOpParamsInvalid));

  Call conv = intra_con8();
  conv.fused.push_back(stage_of(PixelOp::Convolve));
  conv.fused.back().params.coeffs = {1, 2, 3};  // CON_0 takes one
  EXPECT_TRUE(verify_single(conv).mentions(analysis::rules::kOpParamsInvalid));

  Call table = intra_con8();
  table.fused.push_back(stage_of(PixelOp::TableLookup));  // empty table
  table.fused.back().in = ChannelMask::alfa();
  table.fused.back().out = ChannelMask::alfa();
  EXPECT_TRUE(
      verify_single(table).mentions(analysis::rules::kOpParamsInvalid));
}

TEST(VerifierFused, StageMasksAreChecked) {
  Call empty_in = intra_con8();
  empty_in.fused.push_back(stage_of(PixelOp::Threshold));
  empty_in.fused.back().in = ChannelMask::none();
  EXPECT_TRUE(
      verify_single(empty_in).mentions(analysis::rules::kChannelMaskInvalid));

  Call lookup = intra_con8();
  lookup.fused.push_back(stage_of(PixelOp::TableLookup));
  lookup.fused.back().params.table = {1, 2, 3};
  // TableLookup translates segment ids: it must read and write Alfa.
  EXPECT_TRUE(
      verify_single(lookup).mentions(analysis::rules::kChannelMaskInvalid));

  Call clean = intra_con8();
  clean.fused.push_back(stage_of(PixelOp::Threshold));
  EXPECT_EQ(verify_single(clean).error_count(), 0u);
}

// ---- farm wiring -----------------------------------------------------------

TEST(Farm, OptimizeOnSubmitRewritesWholePrograms) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  const i32 grad = program.add_call(intra_con8(), a);
  program.mark_output(program.add_call(pointwise_threshold(40), grad));

  Rng rng(0xFA23u);
  const std::vector<img::Image> inputs = {
      img::make_test_frame(kFrame, rng.next_u64())};
  alib::SoftwareBackend reference;
  const ProgramRunResult ref =
      analysis::run_program(program, reference, inputs);

  serve::FarmOptions on;
  on.shards = 2;
  on.optimize_on_submit = true;
  serve::EngineFarm farm(on);
  const serve::ProgramExecution exec = farm.execute_program(program, inputs);
  EXPECT_TRUE(exec.optimized);
  EXPECT_EQ(exec.log.records.size(), 1u);
  expect_runs_equal(ref, exec.run);

  serve::FarmOptions off;
  off.shards = 2;
  serve::EngineFarm plain(off);
  const serve::ProgramExecution raw = plain.execute_program(program, inputs);
  EXPECT_FALSE(raw.optimized);
  EXPECT_TRUE(raw.log.records.empty());
  expect_runs_equal(ref, raw.run);
}

// ---- run_program contract --------------------------------------------------

TEST(RunProgram, RejectsMismatchedInputs) {
  CallProgram program;
  const i32 a = program.add_input(kFrame, "a");
  program.mark_output(program.add_call(pointwise_threshold(), a));
  alib::SoftwareBackend backend;
  EXPECT_THROW(analysis::run_program(program, backend, {}), Error);
  EXPECT_THROW(
      analysis::run_program(
          program, backend,
          {img::make_test_frame(kFrame, 1), img::make_test_frame(kFrame, 2)}),
      Error);
  EXPECT_THROW(analysis::run_program(program, backend,
                                     {img::make_test_frame(Size{16, 16}, 1)}),
               Error);
}

// ---- tier2: the differential rewrite-fuzz harness --------------------------

/// Wraps one random call as a single-call program (the 520-corpus shape).
CallProgram one_call_program(const Call& call, Size size, bool needs_b) {
  CallProgram program;
  const i32 a = program.add_input(size, "a");
  const i32 b = needs_b ? program.add_input(size, "b") : kNoFrame;
  program.mark_output(program.add_call(call, a, b));
  return program;
}

/// The corpus replay: aeopt must hold every program it touches to zero
/// aeverify regressions, and single-call programs have no rewrite surface
/// at all — they must come back textually identical.
void replay_corpus_case(const Call& call, Size size, bool needs_b) {
  const CallProgram program = one_call_program(call, size, needs_b);
  const std::size_t errors_before =
      analysis::verify_program(program).error_count();
  const OptimizeResult opt = analysis::optimize_program(program);
  EXPECT_FALSE(opt.changed);
  EXPECT_EQ(analysis::format_program(opt.program),
            analysis::format_program(program));
  EXPECT_LE(analysis::verify_program(opt.program).error_count(),
            errors_before);
}

// 8 seeds x 40 calls: the differential suite's corpus recipe.
TEST(OptimizerFuzz, DifferentialCorpusReplaysUnchanged) {
  for (u64 seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull);
    for (int i = 0; i < 40; ++i) {
      const Size size = test::random_frame_size(rng);
      bool needs_b = false;
      const Call call = test::random_any_call(rng, size, needs_b);
      SCOPED_TRACE("seed " + std::to_string(seed) + " case " +
                   std::to_string(i) + ": " + call.describe());
      replay_corpus_case(call, size, needs_b);
    }
  }
}

// The 200 farm-sweep cases complete the 520-program corpus.
TEST(OptimizerFuzz, FarmCorpusReplaysUnchanged) {
  Rng rng(0xD1FFu);
  for (int i = 0; i < 200; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe());
    replay_corpus_case(call, size, needs_b);
  }
}

// Fusion-biased multi-call programs: the rewriter's real hunting ground.
// Every rewritten program must stay bit-exact on the kernel backend, pass
// aeverify with zero errors, and its claimed cycle envelope must contain
// the engine-measured modeled delta.
TEST(OptimizerFuzz, FusionBiasedProgramsAreBitExactWithSoundClaims) {
  par::ThreadPool pool(4);
  KernelBackendAdapter kernels({&pool, 4});
  core::EngineBackend engine({}, core::EngineMode::Analytic);
  int rewritten = 0;
  for (u64 seed = 1; seed <= 60; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xA30Bu);
    const CallProgram program = test::random_fusion_biased_program(rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + ":\n" +
                 analysis::format_program(program));
    ASSERT_FALSE(analysis::verify_program(program).has_errors());
    const OptimizeResult opt = analysis::optimize_program(program);
    EXPECT_EQ(analysis::verify_program(opt.program).error_count(), 0u);
    if (opt.changed) ++rewritten;
    expect_bit_exact(program, opt, kernels, rng);
    expect_bit_exact(program, opt, engine, rng, /*check_claims=*/true);
  }
  // The generator is biased toward fusable chains: if nothing was ever
  // rewritten, the harness is fuzzing the wrong space.
  EXPECT_GT(rewritten, 10);
}

}  // namespace
}  // namespace ae
