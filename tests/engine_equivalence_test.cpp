// Software backend vs. engine simulator: bit-exact output equivalence for
// every op, addressing mode, scan order and both engine execution modes —
// the property the paper's whole software/hardware comparison rests on.
#include <gtest/gtest.h>

#include "core/core.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::Mode;
using alib::PixelOp;
using alib::ScanOrder;
using alib::SoftwareBackend;
using core::EngineBackend;
using core::EngineMode;

struct EquivalenceCase {
  Call call;
  bool needs_b;
  std::string label;
};

std::vector<EquivalenceCase> all_cases() {
  std::vector<EquivalenceCase> cases;
  for (const Call& c : test::representative_intra_calls())
    cases.push_back({c, false, c.describe()});
  for (const Call& c : test::representative_inter_calls())
    cases.push_back({c, true, c.describe()});
  return cases;
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, ScanOrder>> {};

TEST_P(EngineEquivalence, CycleAccurateMatchesSoftware) {
  const auto [index, scan] = GetParam();
  EquivalenceCase ec = all_cases()[index];
  ec.call.scan = scan;
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();

  SoftwareBackend sw;
  EngineBackend hw(core::EngineConfig{}, EngineMode::CycleAccurate);

  const alib::CallResult ref =
      sw.execute(ec.call, a, ec.needs_b ? &b : nullptr);
  const alib::CallResult out =
      hw.execute(ec.call, a, ec.needs_b ? &b : nullptr);

  SCOPED_TRACE(ec.label + " scan=" + alib::to_string(scan));
  test::expect_images_equal(ref.output, out.output);
  EXPECT_EQ(ref.side.sad, out.side.sad);
  EXPECT_EQ(ref.side.histogram, out.side.histogram);
}

TEST_P(EngineEquivalence, AnalyticMatchesSoftware) {
  const auto [index, scan] = GetParam();
  EquivalenceCase ec = all_cases()[index];
  ec.call.scan = scan;
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();

  SoftwareBackend sw;
  EngineBackend hw(core::EngineConfig{}, EngineMode::Analytic);

  const alib::CallResult ref =
      sw.execute(ec.call, a, ec.needs_b ? &b : nullptr);
  const alib::CallResult out =
      hw.execute(ec.call, a, ec.needs_b ? &b : nullptr);

  SCOPED_TRACE(ec.label);
  test::expect_images_equal(ref.output, out.output);
  EXPECT_EQ(ref.side.sad, out.side.sad);
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, ScanOrder>>& tpi) {
  const std::size_t index = std::get<0>(tpi.param);
  const ScanOrder scan = std::get<1>(tpi.param);
  std::string name = all_cases()[index].label + "_" +
                     (scan == ScanOrder::RowMajor ? "row" : "col");
  for (char& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EngineEquivalence,
    ::testing::Combine(::testing::Range<std::size_t>(0, all_cases().size()),
                       ::testing::Values(ScanOrder::RowMajor,
                                         ScanOrder::ColumnMajor)),
    case_name);

TEST(EngineEquivalenceSegment, SegmentMatchesSoftware) {
  const img::Image a = test::small_frame(7);
  alib::SegmentSpec spec;
  spec.seeds = {Point{10, 10}, Point{40, 20}};
  spec.luma_threshold = 20;
  Call call = Call::make_segment(
      PixelOp::Copy, alib::Neighborhood::con8(), spec, ChannelMask::y(),
      ChannelMask::y().with(Channel::Alfa));

  SoftwareBackend sw;
  EngineBackend cyc(core::EngineConfig{}, EngineMode::CycleAccurate);
  EngineBackend ana(core::EngineConfig{}, EngineMode::Analytic);

  const alib::CallResult ref = sw.execute(call, a);
  const alib::CallResult out_c = cyc.execute(call, a);
  const alib::CallResult out_a = ana.execute(call, a);

  test::expect_images_equal(ref.output, out_c.output);
  test::expect_images_equal(ref.output, out_a.output);
  ASSERT_EQ(ref.segments.size(), out_c.segments.size());
  for (std::size_t i = 0; i < ref.segments.size(); ++i) {
    EXPECT_EQ(ref.segments[i].pixel_count, out_c.segments[i].pixel_count);
    EXPECT_EQ(ref.segments[i].geodesic_radius,
              out_c.segments[i].geodesic_radius);
  }
}

TEST(EngineEquivalenceStrict, StrictInterSequencingSameOutput) {
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  const Call call = Call::make_inter(PixelOp::AbsDiff);

  core::EngineConfig strict;
  strict.strict_inter_sequencing = true;
  EngineBackend relaxed(core::EngineConfig{}, EngineMode::CycleAccurate);
  EngineBackend sequential(strict, EngineMode::CycleAccurate);

  const alib::CallResult r1 = relaxed.execute(call, a, &b);
  const alib::CallResult r2 = sequential.execute(call, a, &b);
  test::expect_images_equal(r1.output, r2.output);
  // Strict sequencing can only slow the call down.
  EXPECT_GE(r2.stats.cycles, r1.stats.cycles);
}

}  // namespace
}  // namespace ae
