// EngineFarm basics (tier1): bit-exactness through the Backend interface,
// affinity routing, strip pipelining, option validation and accounting.
// The heavy multi-threaded stress lives in farm_concurrency_test (tier2).
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "serve/farm.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::PixelOp;
using serve::EngineFarm;
using serve::FarmOptions;
using serve::FarmStats;

TEST(FarmOptionsTest, ValidatesShardCountAndCapacities) {
  FarmOptions bad;
  bad.shards = 0;
  EXPECT_THROW(serve::validate_farm_options(bad), InvalidArgument);
  bad = FarmOptions{};
  bad.queue_capacity = 0;
  EXPECT_THROW(serve::validate_farm_options(bad), InvalidArgument);
  bad = FarmOptions{};
  bad.max_batch = 0;
  EXPECT_THROW(serve::validate_farm_options(bad), InvalidArgument);
  bad = FarmOptions{};
  bad.shard_faults.resize(static_cast<std::size_t>(bad.shards) + 1);
  EXPECT_THROW(serve::validate_farm_options(bad), InvalidArgument);
}

TEST(FarmTest, BackendInterfaceIsBitExact) {
  FarmOptions options;
  options.shards = 2;
  EngineFarm farm(options);
  alib::SoftwareBackend sw;
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();

  for (const Call& call : test::representative_intra_calls()) {
    SCOPED_TRACE(call.describe());
    test::expect_results_equal(sw.execute(call, a), farm.execute(call, a));
  }
  for (const Call& call : test::representative_inter_calls()) {
    SCOPED_TRACE(call.describe());
    test::expect_results_equal(sw.execute(call, a, &b),
                               farm.execute(call, a, &b));
  }
}

TEST(FarmTest, AsyncSubmissionCompletesEverything) {
  FarmOptions options;
  options.shards = 3;
  EngineFarm farm(options);
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  alib::SoftwareBackend sw;
  const Call call = Call::make_inter(PixelOp::AbsDiff);
  const alib::CallResult ref = sw.execute(call, a, &b);

  std::vector<std::future<alib::CallResult>> futures;
  for (int i = 0; i < 24; ++i) futures.push_back(farm.submit(call, a, &b));
  for (auto& f : futures)
    test::expect_results_equal(ref, f.get());

  farm.drain();
  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.submitted, 24);
  EXPECT_EQ(stats.completed, 24);
  EXPECT_GE(stats.batches, 1);
  // Every call on the same frame pair: after the first dispatch the rest
  // follow the frames to the resident shard.
  EXPECT_GT(stats.affinity_hits, 0);
}

TEST(FarmTest, AffinityRoutingReusesResidentFrames) {
  FarmOptions options;
  options.shards = 2;
  options.affinity_spill_depth = 64;  // never spill in this test
  EngineFarm farm(options);
  const img::Image x = test::small_frame(11);
  const img::Image y = test::small_frame(22);
  const Call call = Call::make_intra(PixelOp::GradientMag,
                                     alib::Neighborhood::con8());

  std::vector<std::future<alib::CallResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(farm.submit(call, x));
    futures.push_back(farm.submit(call, y));
  }
  for (auto& f : futures) f.get();

  const FarmStats stats = farm.stats();
  i64 reused = 0;
  i64 transferred = 0;
  for (const serve::ShardStats& s : stats.shards) {
    reused += s.session.inputs_reused;
    transferred += s.session.inputs_transferred;
  }
  // Each frame crosses the bus a handful of times at most (first touch per
  // shard; scheduling races may split a frame across shards early on), and
  // the bulk of the 20 calls reuse on-board content.
  EXPECT_GT(reused, 10) << "affinity routing is not keeping frames resident";
  EXPECT_LT(transferred, 10);
  EXPECT_GT(stats.affinity_hits, 0);
}

TEST(FarmTest, StripPipeliningSavesModeledCycles) {
  FarmOptions options;
  options.shards = 1;  // force back-to-back execution on one engine
  options.resilient.session.reuse_resident_frames = false;  // isolate overlap
  EngineFarm farm(options);
  const img::Image a = test::small_frame();
  const Call call = Call::make_intra(PixelOp::Median,
                                     alib::Neighborhood::con8());

  std::vector<std::future<alib::CallResult>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(farm.submit(call, a));
  for (auto& f : futures) f.get();

  const FarmStats stats = farm.stats();
  EXPECT_GT(stats.overlap_cycles_saved, 0u)
      << "queued calls should hide their strip DMA in the previous tail";
  // The shard clock is exactly the serial sum (which the resilient layer
  // accumulates unclipped) minus the pipelining savings — overlap shortens
  // the modeled timeline, it never invents or loses cycles.
  EXPECT_EQ(stats.shards[0].busy_cycles + stats.overlap_cycles_saved,
            stats.shards[0].resilient.cycles);
}

TEST(FarmTest, RetriedCallsDoNotClaimPipelineOverlap) {
  // Regression: a call that needs a whole-call retry streams its input
  // strips more than once, but the previous call's post-input tail could
  // only hide the FIRST attempt's strips.  Crediting the surviving attempt
  // with overlap subtracts the same tail twice, deflating the shard clock
  // and the farm makespan exactly when faults make the farm slower.
  // A large pilot call keeps the single shard busy while the small calls
  // queue behind it, so pipeline continuity (`prev_on_engine`) is
  // deterministic at every call boundary instead of racing the scheduler.
  const img::Image pilot = img::make_test_frame(Size{176, 144}, 7);
  const img::Image a = test::small_frame();
  const Call call = Call::make_intra(PixelOp::Median,
                                     alib::Neighborhood::con8());
  constexpr int kSmall = 4;

  // An "inert" plan: the scripted opportunity is unreachable, so the
  // transport stays clean but the shard runs the same simulated path as
  // the faulty run below — identical interrupt sequences.
  core::FaultPlan inert;
  inert.script.push_back({core::FaultKind::LostInterrupt, u64{1} << 60});

  const auto probe_retries = [&](const core::FaultPlan& plan,
                                 core::EngineTrace* trace) {
    core::ResilientOptions probe_options;
    probe_options.plan = plan;
    core::ResilientSession probe({}, probe_options);
    if (trace != nullptr) probe.set_trace(trace);
    probe.execute(call, pilot);
    for (int i = 0; i < kSmall; ++i) probe.execute(call, a);
    return probe.stats().call_retries;
  };

  // Calibrate the script index.  The trace logs every raised interrupt but
  // only a subset pass through the injector, so the trace count is an
  // upper bound on the LostInterrupt opportunities; scan downward for the
  // last one that actually fires — losing it hangs the final call at its
  // completion interrupt, trips the watchdog, and retries the call whole.
  u64 last_opportunity = 0;
  bool calibrated = false;
  {
    core::EngineTrace trace;
    probe_retries(inert, &trace);
    const u64 upper = trace.count(core::TraceEvent::Interrupt);
    ASSERT_GT(upper, 0u);
    for (u64 k = upper; k-- > 0 && !calibrated;) {
      core::FaultPlan candidate;
      candidate.script = {{core::FaultKind::LostInterrupt, k}};
      if (probe_retries(candidate, nullptr) == 1) {
        last_opportunity = k;
        calibrated = true;
      }
    }
  }
  ASSERT_TRUE(calibrated);

  const auto run = [&](const core::FaultPlan& plan) {
    FarmOptions options;
    options.shards = 1;
    options.shard_faults = {plan};
    EngineFarm farm(options);
    std::vector<std::future<alib::CallResult>> futures;
    futures.push_back(farm.submit(call, pilot));
    for (int i = 0; i < kSmall; ++i) futures.push_back(farm.submit(call, a));
    for (auto& f : futures) f.get();
    farm.drain();
    return farm.stats();
  };

  const FarmStats clean = run(inert);
  core::FaultPlan lose_last = inert;
  lose_last.script = {{core::FaultKind::LostInterrupt, last_opportunity}};
  const FarmStats faulty = run(lose_last);

  // The last call hangs at its completion interrupt, trips the watchdog
  // and is retried whole; the retry breaks the pipeline instead of double
  // counting the previous tail.
  EXPECT_EQ(faulty.shards[0].resilient.call_retries, 1);
  EXPECT_EQ(faulty.shards[0].retry_pipeline_breaks, 1);
  EXPECT_EQ(clean.shards[0].retry_pipeline_breaks, 0);
  EXPECT_LT(faulty.overlap_cycles_saved, clean.overlap_cycles_saved);
  // The makespan accounting identity holds in both runs.
  for (const FarmStats* stats : {&clean, &faulty})
    EXPECT_EQ(stats->shards[0].busy_cycles +
                  stats->shards[0].overlap_cycles_saved,
              stats->shards[0].resilient.cycles +
                  stats->shards[0].elastic_cycles);
}

TEST(FarmTest, SegmentCallsFlowThroughTheFarm) {
  EngineFarm farm;
  alib::SoftwareBackend sw;
  const img::Image a = test::small_frame(7);
  Rng rng(42);
  const Call call = test::random_segment_call(rng, a.size());
  test::expect_results_equal(sw.execute(call, a), farm.execute(call, a));
}

TEST(FarmTest, MalformedCallsThrowInTheCallerContext) {
  EngineFarm farm;
  const img::Image a = test::small_frame();
  const Call inter = Call::make_inter(PixelOp::Add);
  EXPECT_THROW(farm.submit(inter, a, nullptr), InvalidArgument);
  // The farm keeps serving after a rejected submission.
  const Call intra = Call::make_intra(PixelOp::Copy,
                                      alib::Neighborhood::con0());
  alib::SoftwareBackend sw;
  test::expect_results_equal(sw.execute(intra, a), farm.execute(intra, a));
}

TEST(FarmTest, SchedulerTraceRecordsQueueAndOccupancy) {
  core::EngineTrace trace;
  FarmOptions options;
  options.shards = 2;
  EngineFarm farm(options);
  farm.set_scheduler_trace(&trace);
  const img::Image a = test::small_frame();
  const Call call = Call::make_intra(PixelOp::Copy,
                                     alib::Neighborhood::con0());
  std::vector<std::future<alib::CallResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(farm.submit(call, a));
  for (auto& f : futures) f.get();
  farm.set_scheduler_trace(nullptr);

  EXPECT_GT(trace.count(core::TraceEvent::QueueDepth), 0u);
  EXPECT_GT(trace.count(core::TraceEvent::BatchDispatched), 0u);
  EXPECT_GT(trace.count(core::TraceEvent::ShardOccupancy), 0u);
}

TEST(FarmTest, SubmitAfterShutdownThrows) {
  EngineFarm farm;
  const img::Image a = test::small_frame();
  const Call call = Call::make_intra(PixelOp::Copy,
                                     alib::Neighborhood::con0());
  farm.execute(call, a);
  farm.shutdown();
  EXPECT_THROW(farm.submit(call, a), InvalidArgument);
}

// Regression: shutdown() used to decide "already joined" from a racy
// joinable() read under the farm mutex, so two concurrent callers could
// both reach std::thread::join on the scheduler (undefined behavior).
// Shutdown is now serialized by a dedicated lifecycle mutex; any number of
// concurrent callers (plus the destructor) must be safe.
TEST(FarmTest, ConcurrentShutdownIsSerialized) {
  FarmOptions options;
  options.shards = 2;
  EngineFarm farm(options);
  const img::Image a = test::small_frame();
  const Call call = Call::make_intra(PixelOp::Copy,
                                     alib::Neighborhood::con0());
  std::vector<std::future<alib::CallResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(farm.submit(call, a));
  for (auto& f : futures) f.get();

  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t)
    callers.emplace_back([&farm] { farm.shutdown(); });
  for (auto& t : callers) t.join();

  EXPECT_EQ(farm.stats().completed, 8);
  EXPECT_THROW(farm.submit(call, a), InvalidArgument);
}

// ---- aeplan integration: cost-aware routing and admission control ----------

// Routing policy may only change placement, never results: a cost-aware
// farm, a hash-affinity farm and a serial software sweep must agree
// bit-exactly on a mixed workload across all addressing modes.
TEST(FarmCostAwareTest, RoutingIsBitExactWithAffinityRouting) {
  Rng rng(0xAE91u);
  struct Item {
    Call call;
    img::Image a;
    img::Image b;
    bool needs_b = false;
  };
  std::vector<Item> items;
  for (int i = 0; i < 48; ++i) {
    Item item;
    const Size size = test::random_frame_size(rng);
    item.call = test::random_any_call(rng, size, item.needs_b);
    // Repeating content seeds so both routing policies see frame reuse.
    item.a = img::make_test_frame(size, 1 + rng.bounded(4));
    item.b = img::make_test_frame(size, 101 + rng.bounded(4));
    items.push_back(std::move(item));
  }

  alib::SoftwareBackend sw;
  FarmOptions affinity;
  affinity.shards = 3;
  FarmOptions cost_aware;
  cost_aware.shards = 3;
  cost_aware.cost_aware_routing = true;
  EngineFarm affinity_farm(affinity);
  EngineFarm cost_farm(cost_aware);

  std::vector<std::future<alib::CallResult>> from_affinity;
  std::vector<std::future<alib::CallResult>> from_cost;
  for (const Item& item : items) {
    const img::Image* b = item.needs_b ? &item.b : nullptr;
    from_affinity.push_back(affinity_farm.submit(item.call, item.a, b));
    from_cost.push_back(cost_farm.submit(item.call, item.a, b));
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i) + ": " +
                 items[i].call.describe());
    const alib::CallResult ref = sw.execute(
        items[i].call, items[i].a, items[i].needs_b ? &items[i].b : nullptr);
    test::expect_results_equal(ref, from_affinity[i].get());
    test::expect_results_equal(ref, from_cost[i].get());
  }

  // Cost-aware routing still lands repeated frames on their resident shard.
  cost_farm.drain();
  EXPECT_GT(cost_farm.stats().affinity_hits, 0);
}

TEST(FarmCostAwareTest, RepeatedFramesStayResidentUnderCostRouting) {
  FarmOptions options;
  options.shards = 2;
  options.cost_aware_routing = true;
  options.affinity_spill_depth = 64;  // never spill in this test
  EngineFarm farm(options);
  const img::Image x = test::small_frame(11);
  const img::Image y = test::small_frame(22);
  const Call call = Call::make_intra(PixelOp::GradientMag,
                                     alib::Neighborhood::con8());

  std::vector<std::future<alib::CallResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(farm.submit(call, x));
    futures.push_back(farm.submit(call, y));
  }
  for (auto& f : futures) f.get();

  const FarmStats stats = farm.stats();
  i64 reused = 0;
  for (const serve::ShardStats& s : stats.shards)
    reused += s.session.inputs_reused;
  EXPECT_GT(reused, 10) << "cost-aware routing is not keeping frames resident";
  EXPECT_GT(stats.affinity_hits, 0);
}

TEST(FarmAdmissionTest, BudgetRejectsOverPricedCallsInTheCallerContext) {
  FarmOptions options;
  options.admission_budget_cycles = 1000;  // below any call's static upper
  EngineFarm farm(options);
  const img::Image a = test::small_frame();
  const Call call = Call::make_intra(PixelOp::GradientMag,
                                     alib::Neighborhood::con8());

  try {
    farm.submit(call, a);
    FAIL() << "submit above the admission budget should throw";
  } catch (const serve::AdmissionError& error) {
    EXPECT_GT(error.predicted_upper_cycles(), error.budget_cycles());
    EXPECT_EQ(error.budget_cycles(), 1000u);
  }
  // Rejection is visible in the stats and the farm keeps serving.
  EXPECT_EQ(farm.stats().admission_rejected, 1);
  EXPECT_EQ(farm.stats().submitted, 0);
}

TEST(FarmAdmissionTest, GenerousBudgetAdmitsAndStaysBitExact) {
  FarmOptions options;
  options.admission_budget_cycles = 1'000'000'000;  // admits everything
  EngineFarm farm(options);
  alib::SoftwareBackend sw;
  const img::Image a = test::small_frame();
  const Call call = Call::make_intra(PixelOp::GradientMag,
                                     alib::Neighborhood::con8());
  test::expect_results_equal(sw.execute(call, a), farm.execute(call, a));
  farm.drain();
  EXPECT_EQ(farm.stats().admission_rejected, 0);
  EXPECT_EQ(farm.stats().completed, 1);
}

// An admission error is still an InvalidArgument: existing catch sites keep
// working when a budget is configured later.
TEST(FarmAdmissionTest, AdmissionErrorIsAnInvalidArgument) {
  FarmOptions options;
  options.admission_budget_cycles = 1;
  EngineFarm farm(options);
  const img::Image a = test::small_frame();
  const Call call = Call::make_intra(PixelOp::Copy,
                                     alib::Neighborhood::con0());
  EXPECT_THROW(farm.submit(call, a), InvalidArgument);
}

}  // namespace
}  // namespace ae
