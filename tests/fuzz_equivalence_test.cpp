// Randomized equivalence sweep: generate hundreds of *valid* random calls
// (op, neighborhood shape, channels, params, scan, border, frame size) and
// assert the software backend and the cycle-accurate engine agree
// bit-exactly on outputs and side results.  Seeded and deterministic.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.hpp"
#include "core/core.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::Neighborhood;
using alib::OpParams;
using alib::PixelOp;

/// Random odd value in [1, max_odd].
i32 random_odd(Rng& rng, i32 max_odd) {
  return 1 + 2 * rng.uniform(0, (max_odd - 1) / 2);
}

Neighborhood random_neighborhood(Rng& rng) {
  switch (rng.bounded(6)) {
    case 0:
      return Neighborhood::con0();
    case 1:
      return Neighborhood::con4();
    case 2:
      return Neighborhood::con8();
    case 3:
      return Neighborhood::vline(random_odd(rng, 9));
    case 4:
      return Neighborhood::hline(random_odd(rng, 9));
    default:
      return Neighborhood::rect(random_odd(rng, 5), random_odd(rng, 5));
  }
}

ChannelMask random_video_mask(Rng& rng) {
  switch (rng.bounded(3)) {
    case 0:
      return ChannelMask::y();
    case 1:
      return ChannelMask::yuv();
    default:
      return ChannelMask::y().with(Channel::U);
  }
}

/// Builds a random *valid* call; returns whether it needs a second frame.
Call random_call(Rng& rng, bool& needs_b) {
  needs_b = rng.chance(0.4);
  if (needs_b) {
    static const PixelOp inter_ops[] = {
        PixelOp::Copy,    PixelOp::Add,     PixelOp::Sub,
        PixelOp::AbsDiff, PixelOp::Mult,    PixelOp::Min,
        PixelOp::Max,     PixelOp::Average, PixelOp::Sad,
        PixelOp::DiffMask, PixelOp::BitAnd, PixelOp::BitOr,
        PixelOp::BitXor};
    const PixelOp op = inter_ops[rng.bounded(13)];
    OpParams p;
    p.shift = op == PixelOp::Mult ? rng.uniform(4, 8) : 0;
    p.threshold = rng.uniform(0, 64);
    const ChannelMask mask = random_video_mask(rng);
    Call c = Call::make_inter(op, mask, mask, p);
    c.scan = rng.chance(0.5) ? alib::ScanOrder::RowMajor
                             : alib::ScanOrder::ColumnMajor;
    return c;
  }
  static const PixelOp intra_ops[] = {
      PixelOp::Copy,   PixelOp::Convolve, PixelOp::MorphGradient,
      PixelOp::Erode,  PixelOp::Dilate,   PixelOp::Median,
      PixelOp::Threshold, PixelOp::Scale, PixelOp::Histogram};
  const PixelOp op = intra_ops[rng.bounded(9)];
  Neighborhood nbhd =
      op == PixelOp::Convolve || op == PixelOp::Median ||
              op == PixelOp::Erode || op == PixelOp::Dilate ||
              op == PixelOp::MorphGradient
          ? random_neighborhood(rng)
          : Neighborhood::con0();
  OpParams p;
  if (op == PixelOp::Convolve) {
    p.coeffs.resize(nbhd.size());
    for (auto& c : p.coeffs) c = rng.uniform(-4, 4);
    p.shift = rng.uniform(0, 3);
    p.bias = rng.uniform(-20, 20);
  }
  if (op == PixelOp::Scale) {
    p.scale_num = rng.uniform(1, 5);
    p.shift = rng.uniform(0, 2);
    p.bias = rng.uniform(-30, 30);
  }
  p.threshold = rng.uniform(0, 255);
  const ChannelMask mask = random_video_mask(rng);
  Call c = Call::make_intra(op, std::move(nbhd), mask, mask, p);
  c.scan = rng.chance(0.5) ? alib::ScanOrder::RowMajor
                           : alib::ScanOrder::ColumnMajor;
  c.border = rng.chance(0.3) ? alib::BorderPolicy::Constant
                             : alib::BorderPolicy::Replicate;
  c.params.border_constant = img::Pixel::gray(static_cast<u8>(rng.bounded(256)));
  return c;
}

Size random_size(Rng& rng) {
  // Mix of strip-aligned and awkward sizes.
  static const Size sizes[] = {{48, 32}, {33, 17}, {64, 48},
                               {16, 16}, {21, 40}, {96, 16}};
  return sizes[rng.bounded(6)];
}

class FuzzEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzEquivalence, RandomCallsMatchAcrossBackends) {
  Rng rng(GetParam() * 7919);
  alib::SoftwareBackend sw;
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);
  core::EngineBackend analytic({}, core::EngineMode::Analytic);

  for (int i = 0; i < 40; ++i) {
    bool needs_b = false;
    const Call call = random_call(rng, needs_b);
    const Size size = random_size(rng);
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + call.describe() +
                 " on " + to_string(size));

    const alib::CallResult rs = sw.execute(call, a, needs_b ? &b : nullptr);
    const alib::CallResult rc =
        cycle.execute(call, a, needs_b ? &b : nullptr);
    const alib::CallResult ra =
        analytic.execute(call, a, needs_b ? &b : nullptr);

    test::expect_images_equal(rs.output, rc.output);
    test::expect_images_equal(rs.output, ra.output);
    ASSERT_EQ(rs.side.sad, rc.side.sad);
    ASSERT_EQ(rs.side.histogram, rc.side.histogram);
    // Hardware transaction counts follow the Table 2 rule on every frame.
    ASSERT_EQ(rc.stats.access_transactions(),
              static_cast<u64>(2 * size.area()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range<u64>(1, 7));

class FuzzSegment : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzSegment, RandomSegmentCallsMatchAcrossBackends) {
  Rng rng(GetParam() * 104729);
  alib::SoftwareBackend sw;
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);

  for (int i = 0; i < 12; ++i) {
    const Size size = random_size(rng);
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    alib::SegmentSpec spec;
    const int seeds = 1 + static_cast<int>(rng.bounded(4));
    for (int s = 0; s < seeds; ++s)
      spec.seeds.push_back(
          {rng.uniform(0, size.width - 1), rng.uniform(0, size.height - 1)});
    spec.luma_threshold = rng.uniform(0, 80);
    if (rng.chance(0.4)) spec.chroma_threshold = rng.uniform(0, 60);
    spec.connectivity = rng.chance(0.5) ? alib::Connectivity::Four
                                        : alib::Connectivity::Eight;
    const Call call = Call::make_segment(
        PixelOp::Copy, alib::Neighborhood::con0(), spec, ChannelMask::y(),
        ChannelMask::y().with(Channel::Alfa));
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + call.describe());

    const alib::CallResult rs = sw.execute(call, a);
    const alib::CallResult rc = cycle.execute(call, a);
    test::expect_images_equal(rs.output, rc.output);
    ASSERT_EQ(rs.segments.size(), rc.segments.size());
    for (std::size_t s = 0; s < rs.segments.size(); ++s) {
      ASSERT_EQ(rs.segments[s].pixel_count, rc.segments[s].pixel_count);
      ASSERT_EQ(rs.segments[s].geodesic_radius,
                rc.segments[s].geodesic_radius);
      ASSERT_EQ(rs.segments[s].sum_y, rc.segments[s].sum_y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSegment, ::testing::Range<u64>(1, 4));

class FuzzConfig : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzConfig, RandomBoardConfigsStayExactAndAnalyticTracks) {
  Rng rng(GetParam() * 31337);
  alib::SoftwareBackend sw;

  for (int i = 0; i < 8; ++i) {
    core::EngineConfig cfg;
    const std::array<i32, 3> strips{16, 32, 64};
    cfg.strip_lines = strips[rng.bounded(3)];
    cfg.iim_lines = std::max<i32>(cfg.strip_lines / 2,
                                  9 + static_cast<i32>(rng.bounded(12)));
    cfg.oim_lines = 1 + static_cast<i32>(rng.bounded(16));
    cfg.bus_width_bits = rng.chance(0.5) ? 32 : 64;
    cfg.bus_efficiency = 0.5 + rng.uniform01() * 0.5;
    cfg.interrupt_overhead_cycles = rng.bounded(3000);
    cfg.strict_inter_sequencing = rng.chance(0.3);

    bool needs_b = false;
    const Call call = random_call(rng, needs_b);
    const Size size = random_size(rng);
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    SCOPED_TRACE("config " + std::to_string(i) + ": strip=" +
                 std::to_string(cfg.strip_lines) + " iim=" +
                 std::to_string(cfg.iim_lines) + " oim=" +
                 std::to_string(cfg.oim_lines) + " bus=" +
                 std::to_string(cfg.bus_width_bits) + " call=" +
                 call.describe());

    core::EngineRunStats run;
    const alib::CallResult rc = core::simulate_call(
        cfg, call, a, needs_b ? &b : nullptr, &run);
    const alib::CallResult rs = sw.execute(call, a, needs_b ? &b : nullptr);
    test::expect_images_equal(rs.output, rc.output);

    // The analytic model follows the simulator on every configuration.
    const core::EngineRunStats analytic =
        core::analytic_run_stats(cfg, call, size);
    const double rel = std::abs(static_cast<double>(analytic.cycles) -
                                static_cast<double>(run.cycles)) /
                       static_cast<double>(run.cycles);
    EXPECT_LT(rel, 0.08) << "cycle=" << run.cycles
                         << " analytic=" << analytic.cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConfig, ::testing::Range<u64>(1, 4));

}  // namespace
}  // namespace ae
