// Randomized equivalence sweep: generate hundreds of *valid* random calls
// (op, neighborhood shape, channels, params, scan, border, frame size) and
// assert the software backend and the cycle-accurate engine agree
// bit-exactly on outputs and side results.  Seeded and deterministic.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.hpp"
#include "core/core.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::PixelOp;
using test::random_frame_size;
using test::random_streamed_call;

class FuzzEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzEquivalence, RandomCallsMatchAcrossBackends) {
  Rng rng(GetParam() * 7919);
  alib::SoftwareBackend sw;
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);
  core::EngineBackend analytic({}, core::EngineMode::Analytic);

  for (int i = 0; i < 40; ++i) {
    bool needs_b = false;
    const Call call = random_streamed_call(rng, needs_b);
    const Size size = random_frame_size(rng);
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + call.describe() +
                 " on " + to_string(size));

    const alib::CallResult rs = sw.execute(call, a, needs_b ? &b : nullptr);
    const alib::CallResult rc =
        cycle.execute(call, a, needs_b ? &b : nullptr);
    const alib::CallResult ra =
        analytic.execute(call, a, needs_b ? &b : nullptr);

    test::expect_images_equal(rs.output, rc.output);
    test::expect_images_equal(rs.output, ra.output);
    ASSERT_EQ(rs.side.sad, rc.side.sad);
    ASSERT_EQ(rs.side.histogram, rc.side.histogram);
    // Hardware transaction counts follow the Table 2 rule on every frame.
    ASSERT_EQ(rc.stats.access_transactions(),
              static_cast<u64>(2 * size.area()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         ::testing::Range<u64>(1, 7));

class FuzzSegment : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzSegment, RandomSegmentCallsMatchAcrossBackends) {
  Rng rng(GetParam() * 104729);
  alib::SoftwareBackend sw;
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);

  for (int i = 0; i < 12; ++i) {
    const Size size = random_frame_size(rng);
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const Call call = test::random_segment_call(rng, size);
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + call.describe());

    const alib::CallResult rs = sw.execute(call, a);
    const alib::CallResult rc = cycle.execute(call, a);
    test::expect_images_equal(rs.output, rc.output);
    ASSERT_EQ(rs.segments.size(), rc.segments.size());
    for (std::size_t s = 0; s < rs.segments.size(); ++s) {
      ASSERT_EQ(rs.segments[s].pixel_count, rc.segments[s].pixel_count);
      ASSERT_EQ(rs.segments[s].geodesic_radius,
                rc.segments[s].geodesic_radius);
      ASSERT_EQ(rs.segments[s].sum_y, rc.segments[s].sum_y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSegment, ::testing::Range<u64>(1, 4));

class FuzzConfig : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzConfig, RandomBoardConfigsStayExactAndAnalyticTracks) {
  Rng rng(GetParam() * 31337);
  alib::SoftwareBackend sw;

  for (int i = 0; i < 8; ++i) {
    core::EngineConfig cfg;
    const std::array<i32, 3> strips{16, 32, 64};
    cfg.strip_lines = strips[rng.bounded(3)];
    cfg.iim_lines = std::max<i32>(cfg.strip_lines / 2,
                                  9 + static_cast<i32>(rng.bounded(12)));
    cfg.oim_lines = 1 + static_cast<i32>(rng.bounded(16));
    cfg.bus_width_bits = rng.chance(0.5) ? 32 : 64;
    cfg.bus_efficiency = 0.5 + rng.uniform01() * 0.5;
    cfg.interrupt_overhead_cycles = rng.bounded(3000);
    cfg.strict_inter_sequencing = rng.chance(0.3);

    bool needs_b = false;
    const Call call = random_streamed_call(rng, needs_b);
    const Size size = random_frame_size(rng);
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    SCOPED_TRACE("config " + std::to_string(i) + ": strip=" +
                 std::to_string(cfg.strip_lines) + " iim=" +
                 std::to_string(cfg.iim_lines) + " oim=" +
                 std::to_string(cfg.oim_lines) + " bus=" +
                 std::to_string(cfg.bus_width_bits) + " call=" +
                 call.describe());

    core::EngineRunStats run;
    const alib::CallResult rc = core::simulate_call(
        cfg, call, a, needs_b ? &b : nullptr, &run);
    const alib::CallResult rs = sw.execute(call, a, needs_b ? &b : nullptr);
    test::expect_images_equal(rs.output, rc.output);

    // The analytic model follows the simulator on every configuration.
    const core::EngineRunStats analytic =
        core::analytic_run_stats(cfg, call, size);
    const double rel = std::abs(static_cast<double>(analytic.cycles) -
                                static_cast<double>(run.cycles)) /
                       static_cast<double>(run.cycles);
    EXPECT_LT(rel, 0.08) << "cycle=" << run.cycles
                         << " analytic=" << analytic.cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConfig, ::testing::Range<u64>(1, 4));

}  // namespace
}  // namespace ae
