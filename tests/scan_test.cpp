// Scan driver tests: traversal orders, windows, border policies and the
// scan-space coordinate adapter used by the engine.
#include <gtest/gtest.h>

#include "addresslib/scan.hpp"
#include "core/scanspace.hpp"
#include "image/synth.hpp"

namespace ae {
namespace {

TEST(ForEachPosition, RowMajorOrder) {
  std::vector<Point> visits;
  alib::for_each_position(Size{3, 2}, alib::ScanOrder::RowMajor,
                          [&](Point p) { visits.push_back(p); });
  const std::vector<Point> expected{{0, 0}, {1, 0}, {2, 0},
                                    {0, 1}, {1, 1}, {2, 1}};
  EXPECT_EQ(visits, expected);
}

TEST(ForEachPosition, ColumnMajorOrder) {
  std::vector<Point> visits;
  alib::for_each_position(Size{2, 3}, alib::ScanOrder::ColumnMajor,
                          [&](Point p) { visits.push_back(p); });
  const std::vector<Point> expected{{0, 0}, {0, 1}, {0, 2},
                                    {1, 0}, {1, 1}, {1, 2}};
  EXPECT_EQ(visits, expected);
}

TEST(ImageWindow, ReplicateBorder) {
  const img::Image im = img::make_test_frame(Size{8, 8}, 1);
  alib::ImageWindow w(im, alib::BorderPolicy::Replicate, img::Pixel{});
  w.move_to({0, 0});
  EXPECT_EQ(w.at({-3, -3}), im.at(0, 0));
  w.move_to({7, 7});
  EXPECT_EQ(w.at({5, 0}), im.at(7, 7));
  EXPECT_EQ(w.at({0, 0}), im.at(7, 7));
}

TEST(ImageWindow, ConstantBorder) {
  const img::Image im = img::make_test_frame(Size{8, 8}, 1);
  const img::Pixel sentinel = img::Pixel::gray(123);
  alib::ImageWindow w(im, alib::BorderPolicy::Constant, sentinel);
  w.move_to({0, 0});
  EXPECT_EQ(w.at({-1, 0}), sentinel);
  EXPECT_EQ(w.at({1, 1}), im.at(1, 1));
}

TEST(ScanIntra, OutputSizeValidated) {
  const img::Image in(Size{4, 4});
  img::Image wrong(Size{3, 4});
  EXPECT_THROW(
      alib::scan_intra(in, wrong, alib::ScanOrder::RowMajor,
                       alib::BorderPolicy::Replicate, img::Pixel{},
                       [](const alib::ImageWindow& w) { return w.at({0, 0}); }),
      InvalidArgument);
}

TEST(ScanIntra, ResultIndependentOfScanOrder) {
  // The per-pixel function is pure, so both scan orders compute the same
  // image (the engine exploits this for strip orientation).
  const img::Image in = img::make_test_frame(Size{16, 12}, 4);
  img::Image row(in.size());
  img::Image col(in.size());
  auto fn = [](const alib::ImageWindow& w) {
    img::Pixel p = w.at({0, 0});
    p.y = img::clamp_u8((w.at({-1, 0}).y + w.at({1, 0}).y) / 2);
    return p;
  };
  alib::scan_intra(in, row, alib::ScanOrder::RowMajor,
                   alib::BorderPolicy::Replicate, img::Pixel{}, fn);
  alib::scan_intra(in, col, alib::ScanOrder::ColumnMajor,
                   alib::BorderPolicy::Replicate, img::Pixel{}, fn);
  EXPECT_EQ(row, col);
}

TEST(ScanInter, SizeChecks) {
  const img::Image a(Size{4, 4});
  const img::Image b(Size{5, 4});
  img::Image out(Size{4, 4});
  EXPECT_THROW(alib::scan_inter(a, b, out, alib::ScanOrder::RowMajor,
                                [](img::Pixel x, img::Pixel, Point) { return x; }),
               InvalidArgument);
}

TEST(ScanSpace, RowMajorMapping) {
  const core::ScanSpace s(Size{10, 6}, alib::ScanOrder::RowMajor);
  EXPECT_EQ(s.line_count(), 6);
  EXPECT_EQ(s.line_length(), 10);
  EXPECT_EQ(s.to_image(2, 7), (Point{7, 2}));
  EXPECT_EQ(s.line_of({7, 2}), 2);
  EXPECT_EQ(s.pos_of({7, 2}), 7);
  EXPECT_EQ(s.pixel_addr(2, 7), 2 * 10 + 7);
}

TEST(ScanSpace, ColumnMajorMapping) {
  const core::ScanSpace s(Size{10, 6}, alib::ScanOrder::ColumnMajor);
  EXPECT_EQ(s.line_count(), 10);
  EXPECT_EQ(s.line_length(), 6);
  EXPECT_EQ(s.to_image(2, 5), (Point{2, 5}));
  EXPECT_EQ(s.line_of({2, 5}), 2);
  // Host addresses stay row-major regardless of the scan.
  EXPECT_EQ(s.pixel_addr(2, 5), 5 * 10 + 2);
}

TEST(ScanSpace, NeighborhoodLineExtents) {
  const alib::Neighborhood v9 = alib::Neighborhood::vline(9);
  const core::ScanSpace row(Size{8, 8}, alib::ScanOrder::RowMajor);
  const core::ScanSpace col(Size{8, 8}, alib::ScanOrder::ColumnMajor);
  EXPECT_EQ(row.lines_before(v9), 4);
  EXPECT_EQ(row.lines_after(v9), 4);
  EXPECT_EQ(col.lines_before(v9), 0);  // vline lies along a column scan
  EXPECT_EQ(col.lines_after(v9), 0);
  EXPECT_EQ(row.line_delta({0, -3}), -3);
  EXPECT_EQ(col.line_delta({0, -3}), 0);
}

}  // namespace
}  // namespace ae
