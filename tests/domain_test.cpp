// aedom — the per-channel value-interval abstract interpreter
// (analysis/domain.hpp).
//
// Covers the lattice (join, normalization, top), pinned transfer precision
// for the decided cases (thresholds, clamp-elision proofs, uniformity),
// per-op soundness property tests (random calls, every materialized pixel
// inside its computed interval), the domain-based AEW305/AEW306 lints, the
// proven segment-visit brackets and their planner pricing, the
// clamp-free kernel hints, and the --domain-json schema pin.
//
// The heavyweight soundness gate — the full 520-program differential-fuzz
// corpus replayed through the domain — lives in tests/domain_fuzz_test.cpp
// (tier2).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "addresslib/functional.hpp"
#include "addresslib/kernels/kernel_backend.hpp"
#include "analysis/domain.hpp"
#include "analysis/lints.hpp"
#include "analysis/planner.hpp"
#include "analysis/rules.hpp"
#include "common/parallel.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::Neighborhood;
using alib::PixelOp;
using analysis::analyze_domain;
using analysis::CallDomain;
using analysis::CallProgram;
using analysis::ChannelInterval;
using analysis::FrameDomain;
using analysis::join;
using analysis::ProgramDomain;
using analysis::SegmentVisitInterval;
using analysis::transfer_call;

constexpr Size kFrame{48, 32};

Call scale_call(i32 scale_num, i32 shift, i32 bias) {
  alib::OpParams p;
  p.scale_num = scale_num;
  p.shift = shift;
  p.bias = bias;
  return Call::make_intra(PixelOp::Scale, Neighborhood::con0(),
                          ChannelMask::y(), ChannelMask::y(), p);
}

Call threshold_call(i32 threshold) {
  alib::OpParams p;
  p.threshold = threshold;
  return Call::make_intra(PixelOp::Threshold, Neighborhood::con0(),
                          ChannelMask::y(), ChannelMask::y(), p);
}

Call mult_call(i32 shift) {
  alib::OpParams p;
  p.shift = shift;
  return Call::make_inter(PixelOp::Mult, ChannelMask::y(), ChannelMask::y(),
                          p);
}

Call segment_call(i32 luma, i32 chroma,
                  bool respect_existing_labels = false) {
  alib::SegmentSpec spec;
  spec.seeds = {Point{4, 4}};
  spec.luma_threshold = luma;
  spec.chroma_threshold = chroma;
  spec.respect_existing_labels = respect_existing_labels;
  return Call::make_segment(PixelOp::Copy, Neighborhood::con4(), spec,
                            ChannelMask::y(),
                            ChannelMask::y().with(Channel::Alfa));
}

bool fires(const CallProgram& program, const char* rule) {
  return analysis::lint_program(program).mentions(rule);
}

/// Asserts the soundness contract on one executed result: every channel of
/// every pixel lies inside the computed interval, and a claimed-uniform
/// channel really holds one value everywhere.
void expect_result_in_domain(const img::Image& out, const FrameDomain& d) {
  for (i32 y = 0; y < out.size().height; ++y) {
    for (i32 x = 0; x < out.size().width; ++x) {
      for (int ci = 0; ci < kChannelCount; ++ci) {
        const auto c = static_cast<Channel>(ci);
        const ChannelInterval& iv = d.of(c);
        const u16 v = out.at(x, y).get(c);
        ASSERT_TRUE(iv.contains(v))
            << to_string(c) << "=" << v << " escapes [" << iv.lo << ", "
            << iv.hi << "] at (" << x << ", " << y << ")";
        if (iv.uniform) {
          ASSERT_EQ(v, out.at(0, 0).get(c))
              << to_string(c) << " claimed uniform but differs at (" << x
              << ", " << y << ")";
        }
      }
    }
  }
}

// ---- lattice ---------------------------------------------------------------

TEST(ChannelIntervalLattice, ConstructorsAndPredicates) {
  const ChannelInterval c = ChannelInterval::exact(7);
  EXPECT_TRUE(c.constant());
  EXPECT_TRUE(c.uniform);
  EXPECT_EQ(c.width(), 0);
  EXPECT_TRUE(c.contains(7));
  EXPECT_FALSE(c.contains(8));

  const ChannelInterval r = ChannelInterval::range(3, 9);
  EXPECT_FALSE(r.constant());
  EXPECT_FALSE(r.uniform);
  EXPECT_EQ(r.width(), 6);
  EXPECT_TRUE(r.contains(3));
  EXPECT_TRUE(r.contains(9));
  EXPECT_FALSE(r.contains(10));

  // Video channels top out at 255, side channels at 65535.
  EXPECT_EQ(ChannelInterval::top(Channel::Y),
            ChannelInterval::range(0, 255));
  EXPECT_EQ(ChannelInterval::top(Channel::V),
            ChannelInterval::range(0, 255));
  EXPECT_EQ(ChannelInterval::top(Channel::Alfa),
            ChannelInterval::range(0, 65535));
  EXPECT_EQ(ChannelInterval::top(Channel::Aux),
            ChannelInterval::range(0, 65535));
}

TEST(ChannelIntervalLattice, JoinIsTheHull) {
  // Same constant twice: the proof survives.
  EXPECT_EQ(join(ChannelInterval::exact(5), ChannelInterval::exact(5)),
            ChannelInterval::exact(5));
  // Two different constants: hull, uniformity lost (two populations).
  const ChannelInterval mixed =
      join(ChannelInterval::exact(5), ChannelInterval::exact(9));
  EXPECT_EQ(mixed, ChannelInterval::range(5, 9));
  EXPECT_FALSE(mixed.uniform);
  // Plain ranges: hull.
  EXPECT_EQ(join(ChannelInterval::range(3, 9), ChannelInterval::range(7, 20)),
            ChannelInterval::range(3, 20));
  // A non-constant uniform claim does not survive joining with a constant:
  // the two sides may pin different shared values.
  const ChannelInterval u{3, 9, true};
  EXPECT_FALSE(join(u, ChannelInterval::exact(5)).uniform);
  // Join with top is top.
  EXPECT_EQ(join(ChannelInterval::exact(40), ChannelInterval::top(Channel::Y)),
            ChannelInterval::top(Channel::Y));
}

// ---- pinned transfer precision ---------------------------------------------

TEST(DomainTransfer, ThresholdDecidesOnProvenIntervals) {
  const FrameDomain top = FrameDomain::top();
  // threshold >= 255: no u8 luma can exceed it — proven constant 0.
  EXPECT_EQ(transfer_call(threshold_call(255), top, nullptr)
                .result.of(Channel::Y),
            ChannelInterval::exact(0));
  // threshold < 0: every luma exceeds it — proven constant 255.
  EXPECT_EQ(transfer_call(threshold_call(-1), top, nullptr)
                .result.of(Channel::Y),
            ChannelInterval::exact(255));
  // Undecided: both branch values possible.
  EXPECT_EQ(transfer_call(threshold_call(10), top, nullptr)
                .result.of(Channel::Y),
            ChannelInterval::range(0, 255));
  // Channels outside the out mask pass through untouched.
  EXPECT_EQ(transfer_call(threshold_call(255), top, nullptr)
                .result.of(Channel::U),
            ChannelInterval::top(Channel::U));
}

TEST(DomainTransfer, ClampFreeProofsFollowTheRawRange) {
  const FrameDomain top = FrameDomain::top();
  // Mult >> 8 on 8-bit luma: raw peak 255*255 >> 8 = 254 — clamp-free.
  const CallDomain mult = transfer_call(mult_call(8), top, &top);
  EXPECT_TRUE(mult.clamp_free.contains(Channel::Y));
  EXPECT_EQ(mult.result.of(Channel::Y), ChannelInterval::range(0, 254));
  // Mult >> 4 can reach 4064: the clamp is live.
  EXPECT_FALSE(
      transfer_call(mult_call(4), top, &top).clamp_free.contains(Channel::Y));
  // Add on unconstrained inputs can reach 510: the clamp is live.
  EXPECT_FALSE(transfer_call(Call::make_inter(PixelOp::Add), top, &top)
                   .clamp_free.contains(Channel::Y));
  // Add with the second operand proven 0 never leaves [0, 255].
  FrameDomain zero = FrameDomain::top();
  zero.of(Channel::Y) = ChannelInterval::exact(0);
  const CallDomain add0 =
      transfer_call(Call::make_inter(PixelOp::Add), top, &zero);
  EXPECT_TRUE(add0.clamp_free.contains(Channel::Y));
  EXPECT_EQ(add0.result.of(Channel::Y), ChannelInterval::top(Channel::Y));
  // Scale x1 >> 1: raw peak 127 — clamp-free, interval halved.
  const CallDomain half = transfer_call(scale_call(1, 1, 0), top, nullptr);
  EXPECT_TRUE(half.clamp_free.contains(Channel::Y));
  EXPECT_EQ(half.result.of(Channel::Y), ChannelInterval::range(0, 127));
}

TEST(DomainTransfer, UniformityMakesNeighborhoodOpsExact) {
  FrameDomain uni = FrameDomain::top();
  uni.of(Channel::Y) = ChannelInterval{10, 90, true};  // one unknown value
  // A gradient of a uniform channel cancels exactly.
  const Call grad =
      Call::make_intra(PixelOp::GradientMag, Neighborhood::con8());
  EXPECT_EQ(transfer_call(grad, uni, nullptr).result.of(Channel::Y),
            ChannelInterval::exact(0));
  // On an unconstrained channel the same op spans the full range.
  EXPECT_EQ(transfer_call(grad, FrameDomain::top(), nullptr)
                .result.of(Channel::Y),
            ChannelInterval::top(Channel::Y));
  // Order statistics of a uniform window keep the uniformity proof.
  const Call median = Call::make_intra(PixelOp::Median, Neighborhood::con8());
  EXPECT_EQ(transfer_call(median, uni, nullptr).result.of(Channel::Y),
            (ChannelInterval{10, 90, true}));
}

TEST(DomainTransfer, AnalyzeDomainChainsThroughPrograms) {
  // in -> z = Threshold(255)  (Y proven 0) -> s = Add(in, z)  (identity).
  CallProgram p;
  const i32 in = p.add_input(kFrame, "in");
  const i32 z = p.add_call(threshold_call(255), in);
  const i32 s = p.add_call(Call::make_inter(PixelOp::Add), in, z);
  p.mark_output(s);

  const ProgramDomain d = analyze_domain(p);
  ASSERT_EQ(d.frames.size(), 3u);
  ASSERT_EQ(d.calls.size(), 2u);
  EXPECT_EQ(d.frames[static_cast<std::size_t>(in)].of(Channel::Y),
            ChannelInterval::top(Channel::Y));
  EXPECT_EQ(d.frames[static_cast<std::size_t>(z)].of(Channel::Y),
            ChannelInterval::exact(0));
  EXPECT_EQ(d.frames[static_cast<std::size_t>(s)].of(Channel::Y),
            ChannelInterval::top(Channel::Y));
  // The Add's raw result is proven within [0, 255]: clamp-free.
  EXPECT_TRUE(d.calls[1].clamp_free.contains(Channel::Y));
  // And the call is a proven identity.
  std::string why;
  EXPECT_TRUE(analysis::range_identity_call(p, 1, d, &why));
  EXPECT_NE(why.find("b proven == 0"), std::string::npos) << why;
}

// ---- per-op soundness property ---------------------------------------------

// Random streamed and segment calls on random frames: no pixel any backend
// materializes may escape the interval computed from top inputs.  The full
// 520-program corpus replay is tier2 (domain_fuzz_test.cpp).
TEST(DomainSoundness, RandomCallsStayInsideTheirIntervals) {
  Rng rng(0xD0Eu);
  for (int i = 0; i < 60; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe());
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    const FrameDomain top = FrameDomain::top();
    const CallDomain d = transfer_call(call, top, needs_b ? &top : nullptr);
    const alib::CallResult ref =
        alib::execute_functional(call, a, needs_b ? &b : nullptr);
    expect_result_in_domain(ref.output, d.result);
  }
}

// ---- AEW305 (vacuous segment criterion) on the domain ----------------------

TEST(DomainLints, Aew305SyntacticPinsStillHoldOnTopInputs) {
  const auto program = [](i32 luma, i32 chroma) {
    CallProgram p;
    const i32 frame = p.add_input(kFrame, "frame");
    p.mark_output(p.add_call(segment_call(luma, chroma), frame));
    return p;
  };
  EXPECT_TRUE(fires(program(255, -1),
                    analysis::rules::kSegmentVacuousCriterion));
  EXPECT_TRUE(fires(program(400, 300),
                    analysis::rules::kSegmentVacuousCriterion));
  EXPECT_FALSE(fires(program(16, -1),
                     analysis::rules::kSegmentVacuousCriterion));
  EXPECT_FALSE(fires(program(255, 20),
                     analysis::rules::kSegmentVacuousCriterion));
}

TEST(DomainLints, Aew305CatchesCriteriaVacuousOnlyOnTheActualInput) {
  // Segmenting a thresholded frame: Y is proven constant, so even a tight
  // luma threshold admits every neighbor.  The old syntactic predicate
  // (threshold >= 255) cannot see this.
  CallProgram narrow;
  const i32 a = narrow.add_input(kFrame, "a");
  const i32 flat = narrow.add_call(threshold_call(255), a);
  narrow.mark_output(narrow.add_call(segment_call(5, -1), flat));
  EXPECT_TRUE(fires(narrow, analysis::rules::kSegmentVacuousCriterion));

  // The same call on the unconstrained external frame stays quiet.
  CallProgram wide;
  const i32 b = wide.add_input(kFrame, "b");
  wide.mark_output(wide.add_call(segment_call(5, -1), b));
  EXPECT_FALSE(fires(wide, analysis::rules::kSegmentVacuousCriterion));
}

TEST(DomainLints, SegmentCriterionVacuousPredicate) {
  FrameDomain top = FrameDomain::top();
  alib::SegmentSpec spec;
  spec.luma_threshold = 10;
  spec.chroma_threshold = -1;
  EXPECT_FALSE(analysis::segment_criterion_vacuous(spec, top));
  spec.luma_threshold = 255;
  EXPECT_TRUE(analysis::segment_criterion_vacuous(spec, top));
  spec.chroma_threshold = 100;  // U/V can spread by 255: not vacuous
  EXPECT_FALSE(analysis::segment_criterion_vacuous(spec, top));
  spec.chroma_threshold = 255;
  EXPECT_TRUE(analysis::segment_criterion_vacuous(spec, top));

  // A uniform channel has zero spread regardless of its interval width.
  FrameDomain uni = FrameDomain::top();
  uni.of(Channel::Y) = ChannelInterval{0, 255, true};
  spec.luma_threshold = 0;
  spec.chroma_threshold = -1;
  EXPECT_TRUE(analysis::segment_criterion_vacuous(spec, uni));
}

// ---- AEW306 (proven identity op) -------------------------------------------

TEST(DomainLints, Aew306FiresOnProvenIdentities) {
  // Whole-call structural identity: Scale x1 >> 0 + 0.
  CallProgram ident;
  const i32 a = ident.add_input(kFrame, "a");
  ident.mark_output(ident.add_call(scale_call(1, 0, 0), a));
  EXPECT_TRUE(fires(ident, analysis::rules::kRangeIdentityOp));

  // A scale that actually transforms stays quiet.
  CallProgram real;
  const i32 b = real.add_input(kFrame, "b");
  real.mark_output(real.add_call(scale_call(3, 1, 7), b));
  EXPECT_FALSE(fires(real, analysis::rules::kRangeIdentityOp));

  // Copy is the identity in any mode.
  CallProgram copy;
  const i32 c = copy.add_input(kFrame, "c");
  copy.mark_output(copy.add_call(
      Call::make_intra(PixelOp::Copy, Neighborhood::con0()), c));
  EXPECT_TRUE(fires(copy, analysis::rules::kRangeIdentityOp));

  // Sad matches frames like Copy but accumulates on the side port:
  // dropping it would lose results, so the lint must stay quiet.
  CallProgram sad;
  const i32 x = sad.add_input(kFrame, "x");
  const i32 y = sad.add_input(kFrame, "y");
  sad.mark_output(sad.add_call(Call::make_inter(PixelOp::Sad), x, y));
  EXPECT_FALSE(fires(sad, analysis::rules::kRangeIdentityOp));
}

// ---- proven segment visit brackets -----------------------------------------

TEST(DomainSegments, ProvenVisitsCollapseTheEnvelope) {
  const u64 area = static_cast<u64>(kFrame.area());
  const FrameDomain top = FrameDomain::top();

  // Vacuous criterion, fresh labels: the flood visits exactly the frame.
  const auto flood = analysis::proven_segment_visits(
      segment_call(255, -1), top, kFrame);
  ASSERT_TRUE(flood.has_value());
  EXPECT_EQ(flood->lo, area);
  EXPECT_EQ(flood->hi, area);

  // Selective criterion: nothing provable without pixels.
  EXPECT_FALSE(analysis::proven_segment_visits(segment_call(16, -1), top,
                                               kFrame)
                   .has_value());

  // respect_existing_labels with unconstrained Alfa: labels may block
  // arbitrary subsets — nothing provable even under a vacuous criterion.
  EXPECT_FALSE(analysis::proven_segment_visits(
                   segment_call(255, -1, /*respect=*/true), top, kFrame)
                   .has_value());

  // ... but Alfa proven clear restores the exact flood.
  FrameDomain clear = FrameDomain::top();
  clear.of(Channel::Alfa) = ChannelInterval::exact(0);
  const auto cleared = analysis::proven_segment_visits(
      segment_call(255, -1, /*respect=*/true), clear, kFrame);
  ASSERT_TRUE(cleared.has_value());
  EXPECT_EQ(cleared->lo, area);

  // ... and Alfa proven >= 1 everywhere blocks every seed: zero visits.
  FrameDomain labeled = FrameDomain::top();
  labeled.of(Channel::Alfa) = ChannelInterval::range(1, 65535);
  const auto blocked = analysis::proven_segment_visits(
      segment_call(255, -1, /*respect=*/true), labeled, kFrame);
  ASSERT_TRUE(blocked.has_value());
  EXPECT_EQ(blocked->lo, 0u);
  EXPECT_EQ(blocked->hi, 0u);

  // Degenerate geometry: an out-of-frame seed throws at execution, so
  // nothing is provable; no seeds, same.
  EXPECT_FALSE(analysis::proven_segment_visits(segment_call(255, -1), top,
                                               Size{2, 2})
                   .has_value());
  Call no_seeds = segment_call(255, -1);
  no_seeds.segment.seeds.clear();
  EXPECT_FALSE(
      analysis::proven_segment_visits(no_seeds, top, kFrame).has_value());
}

TEST(DomainSegments, VisitBracketsTightenThePlan) {
  const analysis::PlanOptions options;
  const Call call = segment_call(255, -1);
  const analysis::CostEnvelope free =
      analysis::plan_call(call, kFrame, options);

  // The exact-flood bracket pins the traversal: the lower bound rises to
  // meet the (unchanged) worst case.
  const u64 area = static_cast<u64>(kFrame.area());
  const analysis::CostEnvelope exact = analysis::plan_call(
      call, kFrame, options, SegmentVisitInterval{area, area});
  EXPECT_GT(exact.cycles.lower, free.cycles.lower);
  EXPECT_LE(exact.cycles.upper, free.cycles.upper);

  // The zero-visit bracket collapses the upper bound.
  const analysis::CostEnvelope none = analysis::plan_call(
      call, kFrame, options, SegmentVisitInterval{0, 0});
  EXPECT_LT(none.cycles.upper, free.cycles.upper);

  // The bracket is clamped against the static extremes: an overclaimed
  // interval cannot push the envelope above the content-free bound.
  const analysis::CostEnvelope wild = analysis::plan_call(
      call, kFrame, options, SegmentVisitInterval{0, 100 * area});
  EXPECT_LE(wild.cycles.upper, free.cycles.upper);

  // Non-segment calls ignore the hint entirely.
  const Call scale = scale_call(3, 1, 7);
  const analysis::CostEnvelope plain =
      analysis::plan_call(scale, kFrame, options);
  const analysis::CostEnvelope hinted = analysis::plan_call(
      scale, kFrame, options, SegmentVisitInterval{0, 0});
  EXPECT_EQ(plain.cycles.lower, hinted.cycles.lower);
  EXPECT_EQ(plain.cycles.upper, hinted.cycles.upper);
}

TEST(DomainSegments, HintedProgramPlanPricesProvenCalls) {
  CallProgram p;
  const i32 frame = p.add_input(kFrame, "frame");
  p.mark_output(p.add_call(segment_call(255, -1), frame));

  const analysis::PlanOptions options;
  const ProgramDomain domain = analyze_domain(p);
  const auto hints = analysis::domain_visit_hints(p, domain);
  ASSERT_EQ(hints.size(), 1u);
  ASSERT_TRUE(hints[0].has_value());
  EXPECT_EQ(hints[0]->lo, static_cast<u64>(kFrame.area()));

  const analysis::ProgramPlan free = analysis::plan_program(p, options);
  const analysis::ProgramPlan hinted =
      analysis::plan_program(p, options, hints);
  EXPECT_GT(hinted.total.cycles.lower, free.total.cycles.lower);
  EXPECT_LE(hinted.total.cycles.upper, free.total.cycles.upper);
}

// ---- clamp-free kernel hints -----------------------------------------------

TEST(DomainHints, StampsClampFreeOnStreamedCallsOnly) {
  CallProgram p;
  const i32 in = p.add_input(kFrame, "in");
  const i32 half = p.add_call(scale_call(1, 1, 0), in);  // raw peak 127
  p.mark_output(p.add_call(segment_call(255, -1), half));

  analysis::apply_domain_hints(p, analyze_domain(p));
  EXPECT_TRUE(p.calls()[0].call.clamp_free.contains(Channel::Y));
  // Segment calls stay unhinted: the flood's deferred-apply path does not
  // carry the streamed clamp-free lowering.
  EXPECT_TRUE(p.calls()[1].call.clamp_free.empty());
}

TEST(DomainHints, HintedKernelsStayBitExact) {
  par::ThreadPool pool(2);
  const alib::KernelBackend kernels({&pool, 8});
  Rng rng(0xBEEFu);
  const img::Image a = img::make_test_frame(kFrame, rng.next_u64());
  const img::Image b = img::make_test_frame(kFrame, rng.next_u64());

  const struct {
    Call call;
    bool needs_b;
  } cases[] = {
      {mult_call(8), true},         // inter Mult, SIMD clamp-free path
      {scale_call(1, 1, 0), false}, // intra Scale, scalar clamp-free path
  };
  for (const auto& [call, needs_b] : cases) {
    SCOPED_TRACE(call.describe());
    CallProgram p;
    const i32 fa = p.add_input(kFrame, "a");
    const i32 fb = needs_b ? p.add_input(kFrame, "b") : analysis::kNoFrame;
    p.mark_output(p.add_call(call, fa, fb));
    analysis::apply_domain_hints(p, analyze_domain(p));
    const Call hinted = p.calls()[0].call;
    ASSERT_TRUE(hinted.clamp_free.contains(Channel::Y));

    const alib::CallResult ref =
        alib::execute_functional(call, a, needs_b ? &b : nullptr);
    test::expect_results_equal(
        ref, kernels.execute(hinted, a, needs_b ? &b : nullptr));
  }
}

// ---- renderers -------------------------------------------------------------

TEST(DomainRender, JsonSchemaIsPinned) {
  CallProgram p;
  const i32 in = p.add_input(Size{4, 3}, "in");
  const i32 out = p.add_call(scale_call(1, 1, 0), in);
  p.set_frame_name(out, "half");
  p.mark_output(out);

  EXPECT_EQ(
      analysis::domain_json(p, analyze_domain(p)),
      "{\"frames\":["
      "{\"id\":0,\"name\":\"in\",\"channels\":["
      "{\"channel\":\"Y\",\"lo\":0,\"hi\":255,\"uniform\":false},"
      "{\"channel\":\"U\",\"lo\":0,\"hi\":255,\"uniform\":false},"
      "{\"channel\":\"V\",\"lo\":0,\"hi\":255,\"uniform\":false},"
      "{\"channel\":\"Alfa\",\"lo\":0,\"hi\":65535,\"uniform\":false},"
      "{\"channel\":\"Aux\",\"lo\":0,\"hi\":65535,\"uniform\":false}]},"
      "{\"id\":1,\"name\":\"half\",\"channels\":["
      "{\"channel\":\"Y\",\"lo\":0,\"hi\":127,\"uniform\":false},"
      "{\"channel\":\"U\",\"lo\":0,\"hi\":255,\"uniform\":false},"
      "{\"channel\":\"V\",\"lo\":0,\"hi\":255,\"uniform\":false},"
      "{\"channel\":\"Alfa\",\"lo\":0,\"hi\":65535,\"uniform\":false},"
      "{\"channel\":\"Aux\",\"lo\":0,\"hi\":65535,\"uniform\":false}]}],"
      "\"calls\":[{\"index\":0,\"clamp_free\":\"Y\"}]}");
}

TEST(DomainRender, JsonReportsSegmentVisitBrackets) {
  CallProgram p;
  const i32 frame = p.add_input(kFrame, "frame");
  p.mark_output(p.add_call(segment_call(255, -1), frame));
  const std::string json = analysis::domain_json(p, analyze_domain(p));
  EXPECT_NE(json.find("\"segment_visits\":{\"lo\":1536,\"hi\":1536}"),
            std::string::npos)
      << json;
  // Segment calls carry no clamp-free mask.
  EXPECT_NE(json.find("\"clamp_free\":\"-\""), std::string::npos) << json;
}

TEST(DomainRender, TextTableNamesFramesAndProofs) {
  CallProgram p;
  const i32 in = p.add_input(kFrame, "in");
  p.mark_output(p.add_call(scale_call(1, 1, 0), in));
  const std::string text = analysis::format_domain(p, analyze_domain(p));
  EXPECT_NE(text.find("domain:"), std::string::npos);
  EXPECT_NE(text.find("in 48x32"), std::string::npos) << text;
  EXPECT_NE(text.find("Y[0,127]"), std::string::npos) << text;
  EXPECT_NE(text.find("call 0 clamp-free: Y"), std::string::npos) << text;
}

}  // namespace
}  // namespace ae
