// Bus DMA and transmission unit tests: strip transfer order, line arrival
// bookkeeping, interrupt accounting, Res-block output gating and the
// word-level data movement contracts.
#include <gtest/gtest.h>

#include "core/dma.hpp"
#include "core/iim.hpp"
#include "core/oim.hpp"
#include "core/txu.hpp"
#include "image/synth.hpp"

namespace ae::core {
namespace {

struct Rig {
  EngineConfig config;
  img::Image a;
  img::Image b;
  ScanSpace space;
  ZbtMemory zbt;
  ResultTracker results;
  img::Image output;
  BusDma dma;

  explicit Rig(Size size, int images = 1,
               alib::ScanOrder order = alib::ScanOrder::RowMajor,
               EngineConfig cfg = {})
      : config(cfg),
        a(img::make_test_frame(size, 1)),
        b(img::make_test_frame(size, 2)),
        space(size, order),
        zbt(config, size),
        results(size.area()),
        output(size),
        dma(config, space, zbt, a, images == 2 ? &b : nullptr, results,
            output) {}

  void tick() {
    zbt.begin_cycle();
    dma.tick();
  }
  void run_input() {
    for (u64 guard = 0; !dma.input_done(); ++guard) {
      ASSERT_LT(guard, 10'000'000u) << "input transfer hung";
      tick();
    }
  }
};

TEST(BusDma, LinesArriveInScanOrder) {
  Rig rig(Size{48, 32});
  i32 last = 0;
  while (!rig.dma.input_done()) {
    rig.tick();
    const i32 now = rig.dma.line_arrived(0, last) ? last + 1 : last;
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_TRUE(rig.dma.frame_complete(0));
  EXPECT_TRUE(rig.dma.line_arrived(0, 31));
}

TEST(BusDma, WordCountMatchesFrame) {
  Rig rig(Size{48, 32});
  rig.run_input();
  EXPECT_EQ(rig.dma.words_in(), static_cast<u64>(48 * 32 * 2));
}

TEST(BusDma, InterTransfersBothFramesInterleaved) {
  Rig rig(Size{48, 32}, 2);
  // After the first strip chunk x both images: image 0's strip arrives
  // before image 1 finishes its part, but both complete together.
  rig.run_input();
  EXPECT_TRUE(rig.dma.frame_complete(0));
  EXPECT_TRUE(rig.dma.frame_complete(1));
  EXPECT_EQ(rig.dma.words_in(), static_cast<u64>(48 * 32 * 2 * 2));
}

TEST(BusDma, InterruptPerStripChunk) {
  Rig rig(Size{48, 32});  // 2 strips of 16 lines
  rig.run_input();
  // setup + one per strip.
  EXPECT_EQ(rig.dma.interrupts(), 1u + 2u);
  Rig rig2(Size{48, 32}, 2);
  rig2.run_input();
  EXPECT_EQ(rig2.dma.interrupts(), 1u + 4u);  // 2 strips x 2 images
}

TEST(BusDma, PartialLastStripHandled) {
  Rig rig(Size{48, 24});  // 24 lines: one full strip + 8 lines
  rig.run_input();
  EXPECT_EQ(rig.dma.words_in(), static_cast<u64>(48 * 24 * 2));
  EXPECT_TRUE(rig.dma.frame_complete(0));
}

TEST(BusDma, InputPhasePutsPixelsOnZbt) {
  Rig rig(Size{32, 16});
  rig.run_input();
  // Spot-check: pixel (5, 3) must be retrievable from the region its strip
  // went to (strip 0 -> InputA for intra).
  rig.zbt.begin_cycle();
  const i64 addr = rig.space.pixel_addr(Point{5, 3});
  EXPECT_EQ(rig.zbt.read_input_pixel(ZbtRegion::InputA, addr),
            rig.a.at(5, 3));
}

TEST(BusDma, AlternateStripsLandInAlternatePairs) {
  Rig rig(Size{32, 32});  // 2 strips
  rig.run_input();
  rig.zbt.begin_cycle();
  // Line 20 is in strip 1 -> pair B.
  const i64 addr = rig.space.pixel_addr(Point{5, 20});
  EXPECT_EQ(rig.zbt.read_input_pixel(ZbtRegion::InputB, addr),
            rig.a.at(5, 20));
}

TEST(BusDma, OutputWaitsForBlockRelease) {
  Rig rig(Size{32, 16});
  rig.run_input();
  // Nothing written yet: output must idle (after the final strip's
  // interrupt gap drains).
  const u64 waits_before = rig.dma.wait_cycles();
  for (u32 i = 0; i < rig.config.interrupt_overhead_cycles + 100; ++i)
    rig.tick();
  EXPECT_FALSE(rig.dma.output_done());
  EXPECT_GT(rig.dma.wait_cycles(), waits_before);
  EXPECT_EQ(rig.dma.words_out(), 0u);
}

TEST(BusDma, OutputDeliversAfterTxuWrites) {
  Rig rig(Size{32, 16});
  rig.run_input();
  // Manually emulate the TxU writing every result pixel.
  Oim oim(rig.config, rig.space.line_length());
  TxuOut txu(rig.zbt, oim, rig.results);
  for (i64 p = 0; p < rig.a.pixel_count(); ++p) {
    // Push-drain one pixel at a time so the tiny OIM never fills.
    oim.push({img::Pixel::gray(static_cast<u8>(p & 0xFF)), p});
    while (!oim.empty()) {
      rig.zbt.begin_cycle();
      txu.tick();
    }
  }
  for (u64 guard = 0; !rig.dma.output_done(); ++guard) {
    ASSERT_LT(guard, 10'000'000u) << "output transfer hung";
    rig.tick();
  }
  EXPECT_EQ(rig.dma.words_out(), static_cast<u64>(32 * 16 * 2));
  for (i64 p = 0; p < rig.a.pixel_count(); ++p) {
    const auto x = static_cast<i32>(p % 32);
    const auto y = static_cast<i32>(p / 32);
    EXPECT_EQ(rig.output.at(x, y).y, static_cast<u8>(p & 0xFF));
  }
}

TEST(TxuIn, FillsIimInOrderAndCountsTransactions) {
  Rig rig(Size{32, 16});
  Iim iim(rig.config, rig.space.line_length(), rig.space.line_count(), 1);
  TxuIn txu(rig.config, rig.space, rig.zbt, iim, rig.dma);
  for (u64 guard = 0; !txu.done(); ++guard) {
    ASSERT_LT(guard, 10'000'000u);
    rig.zbt.begin_cycle();
    rig.dma.tick();
    txu.tick();
    // Free IIM space aggressively (the PU would normally pace this).
    if (iim.next_line_to_fill(0) > 8)
      iim.release_below(0, iim.next_line_to_fill(0) - 8);
  }
  EXPECT_EQ(txu.pixels_moved(), static_cast<u64>(32 * 16));
  EXPECT_EQ(rig.zbt.processing_read_transactions(),
            static_cast<u64>(32 * 16));
  // The last 8 lines are still resident and readable.
  EXPECT_TRUE(iim.line_ready(0, 15));
  EXPECT_EQ(iim.read(0, 15, 5), rig.a.at(5, 15));
}

TEST(TxuOut, TwoWordCyclesPerPixel) {
  EngineConfig config;
  ZbtMemory zbt(config, Size{32, 16});
  ResultTracker results(32 * 16);
  Oim oim(config, 32);
  TxuOut txu(zbt, oim, results);
  oim.push({img::Pixel::gray(9), 0});
  zbt.begin_cycle();
  txu.tick();  // lower word
  EXPECT_FALSE(results.is_written(0));
  zbt.begin_cycle();
  txu.tick();  // upper word -> pixel complete
  EXPECT_TRUE(results.is_written(0));
  EXPECT_EQ(txu.words_written(), 2u);
  EXPECT_TRUE(oim.empty());
}

TEST(ResultTrackerTest, BlockCompletionByHalves) {
  ResultTracker t(10);
  for (i64 p = 0; p < 5; ++p) t.mark(p);
  EXPECT_TRUE(t.block_a_complete());
  EXPECT_FALSE(t.block_b_complete());
  for (i64 p = 5; p < 10; ++p) t.mark(p);
  EXPECT_TRUE(t.block_b_complete());
  EXPECT_EQ(t.written_count, 10);
}

TEST(ResultTrackerTest, DoubleMarkCaught) {
  ResultTracker t(4);
  t.mark(2);
  EXPECT_THROW(t.mark(2), InvariantViolation);
}

}  // namespace
}  // namespace ae::core
