// aeplan calibration over the full differential-fuzz corpus (tier2).
//
// Replays the exact 520 known-good workloads of differential_fuzz_test.cpp
// (8 seeds x 40 engine-differential calls + the 200-case farm corpus) as
// one-call programs and asserts, for every one of them, that the measured
// cost of BOTH engine backends lands inside the planner's static envelope:
//
//   * cycle-accurate: cycles in [lower, upper], DMA word counts exact,
//     ZBT transactions inside the bound, Oim high-water under the
//     line-occupancy bound (the envelope is in lines, the sim counts
//     FIFO pixels, so the comparison scales by the line length);
//   * analytic: cycles in [lower, upper] (the estimate is built from the
//     same formulas, so this guards the margin, not the formula).
//
// This is the "no measured cost ever escapes the envelope" soundness gate
// the farm admission control and the AEW302 break-even lint lean on.
#include <gtest/gtest.h>

#include <string>

#include "analysis/planner.hpp"
#include "core/core.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;

/// One corpus case: plan the call statically, run it on both backends,
/// assert every measured quantity respects the envelope.
void expect_cost_inside_envelope(const Call& call, const img::Image& a,
                                 const img::Image* b,
                                 core::EngineBackend& cycle,
                                 core::EngineBackend& analytic) {
  const analysis::CostEnvelope env = analysis::plan_call(call, a.size());

  cycle.execute(call, a, b);
  const core::EngineRunStats& run = cycle.last_run();
  EXPECT_TRUE(env.cycles.contains(run.cycles))
      << "cycle-accurate cycles " << run.cycles << " outside ["
      << env.cycles.lower << ", " << env.cycles.upper << "]";
  EXPECT_EQ(run.words_in, env.dma_words_in);
  EXPECT_EQ(run.words_out, env.dma_words_out);
  EXPECT_TRUE(env.zbt_reads.contains(run.zbt_read_transactions))
      << "zbt reads " << run.zbt_read_transactions << " outside ["
      << env.zbt_reads.lower << ", " << env.zbt_reads.upper << "]";
  EXPECT_TRUE(env.zbt_writes.contains(run.zbt_write_transactions))
      << "zbt writes " << run.zbt_write_transactions << " outside ["
      << env.zbt_writes.lower << ", " << env.zbt_writes.upper << "]";
  const core::ScanSpace space(a.size(), call.scan);
  EXPECT_LE(run.oim_peak, static_cast<u64>(env.oim_peak_lines) *
                              static_cast<u64>(space.line_length()))
      << "oim peak (pixels) above the line-occupancy bound";

  analytic.execute(call, a, b);
  EXPECT_TRUE(env.cycles.contains(analytic.last_run().cycles))
      << "analytic cycles " << analytic.last_run().cycles << " outside ["
      << env.cycles.lower << ", " << env.cycles.upper << "]";

  // Segment calls additionally get the content-aware refinement: the
  // reachability probe's visit interval must yield an envelope NESTED in
  // the static one (refinement only ever shrinks) that still contains
  // every measured quantity — the "never excluding measured cycles" side
  // of the tightening bargain.
  if (call.mode != alib::Mode::Segment) return;
  const alib::SegmentReachability reach =
      alib::probe_segment_reachability(a, call.segment);
  const analysis::CostEnvelope fine =
      analysis::plan_call(call, a.size(), {}, reach);
  EXPECT_GE(fine.cycles.lower, env.cycles.lower);
  EXPECT_LE(fine.cycles.upper, env.cycles.upper);
  EXPECT_GE(fine.zbt_reads.lower, env.zbt_reads.lower);
  EXPECT_LE(fine.zbt_reads.upper, env.zbt_reads.upper);
  EXPECT_GE(fine.zbt_writes.lower, env.zbt_writes.lower);
  EXPECT_LE(fine.zbt_writes.upper, env.zbt_writes.upper);
  EXPECT_TRUE(fine.cycles.contains(run.cycles))
      << "cycle-accurate cycles " << run.cycles
      << " outside the refined [" << fine.cycles.lower << ", "
      << fine.cycles.upper << "]";
  EXPECT_TRUE(fine.zbt_reads.contains(run.zbt_read_transactions))
      << "zbt reads " << run.zbt_read_transactions
      << " outside the refined [" << fine.zbt_reads.lower << ", "
      << fine.zbt_reads.upper << "]";
  EXPECT_TRUE(fine.zbt_writes.contains(run.zbt_write_transactions))
      << "zbt writes " << run.zbt_write_transactions
      << " outside the refined [" << fine.zbt_writes.lower << ", "
      << fine.zbt_writes.upper << "]";
  EXPECT_TRUE(fine.cycles.contains(analytic.last_run().cycles))
      << "analytic cycles " << analytic.last_run().cycles
      << " outside the refined [" << fine.cycles.lower << ", "
      << fine.cycles.upper << "]";
}

// 8 seeds x 40 calls: the engine-differential recipe, replayed verbatim so
// the planner is calibrated on exactly the workloads the simulator is
// already proven bit-exact on.
class PlanCalibrationFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(PlanCalibrationFuzz, MeasuredCostLandsInsideTheEnvelope) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ull);
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);
  core::EngineBackend analytic({}, core::EngineMode::Analytic);

  int segment_cases = 0;
  for (int i = 0; i < 40; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    segment_cases += call.mode == alib::Mode::Segment ? 1 : 0;
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe() +
                 " on " + to_string(size));
    expect_cost_inside_envelope(call, a, needs_b ? &b : nullptr, cycle,
                                analytic);
  }
  EXPECT_GT(segment_cases, 0);  // the hard (non-deterministic-cost) mode
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanCalibrationFuzz,
                         ::testing::Range<u64>(1, 9));

// The point of the refinement, measured: on a sparse mask (one bright disk
// in a flat frame, tight luma criterion) the refined segment envelope is
// strictly narrower than the static one — by the full area ratio on the
// ZBT bounds, which carry no constant term — while the cycle simulator's
// measured cost still lands inside it.
TEST(PlanCalibrationSparseSegment, RefinedEnvelopeShrinksAroundMeasuredCost) {
  const Size size{64, 48};
  img::Image a = test::checkerboard_frame(size, 16, 16);  // flat background
  i64 disk = 0;
  for (i32 y = 0; y < size.height; ++y)
    for (i32 x = 0; x < size.width; ++x) {
      const i32 dx = x - 32;
      const i32 dy = y - 24;
      if (dx * dx + dy * dy > 10 * 10) continue;
      a.ref(x, y).y = 200;
      ++disk;
    }
  alib::SegmentSpec spec;
  spec.seeds = {Point{32, 24}};
  spec.luma_threshold = 10;
  const Call call =
      Call::make_segment(alib::PixelOp::Median, alib::Neighborhood::con8(),
                         spec, ChannelMask::y(),
                         ChannelMask::y().with(Channel::Alfa));

  const analysis::CostEnvelope coarse = analysis::plan_call(call, size);
  const alib::SegmentReachability reach =
      alib::probe_segment_reachability(a, call.segment);
  EXPECT_GE(reach.reachable_pixels, disk);
  EXPECT_LT(reach.reachable_pixels, static_cast<i64>(size.area()) / 4);
  const analysis::CostEnvelope fine =
      analysis::plan_call(call, size, {}, reach);

  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);
  cycle.execute(call, a, nullptr);
  const core::EngineRunStats& run = cycle.last_run();

  EXPECT_LT(fine.cycles.upper - fine.cycles.lower,
            coarse.cycles.upper - coarse.cycles.lower);
  EXPECT_LT(fine.zbt_reads.upper - fine.zbt_reads.lower,
            (coarse.zbt_reads.upper - coarse.zbt_reads.lower) / 4);
  EXPECT_LT(fine.zbt_writes.upper - fine.zbt_writes.lower,
            (coarse.zbt_writes.upper - coarse.zbt_writes.lower) / 4);
  EXPECT_TRUE(fine.cycles.contains(run.cycles))
      << run.cycles << " outside [" << fine.cycles.lower << ", "
      << fine.cycles.upper << "]";
  EXPECT_TRUE(fine.zbt_reads.contains(run.zbt_read_transactions));
  EXPECT_TRUE(fine.zbt_writes.contains(run.zbt_write_transactions));

  core::EngineBackend analytic({}, core::EngineMode::Analytic);
  analytic.execute(call, a, nullptr);
  EXPECT_TRUE(fine.cycles.contains(analytic.last_run().cycles));
}

// The 200-case farm corpus (repeating content seeds, all addressing modes).
TEST(PlanCalibrationFarmCorpus, MeasuredCostLandsInsideTheEnvelope) {
  Rng rng(0xD1FFu);
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);
  core::EngineBackend analytic({}, core::EngineMode::Analytic);

  for (int i = 0; i < 200; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    const img::Image a = img::make_test_frame(size, 1 + rng.bounded(6));
    const img::Image b = img::make_test_frame(size, 201 + rng.bounded(6));
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe() +
                 " on " + to_string(size));
    expect_cost_inside_envelope(call, a, needs_b ? &b : nullptr, cycle,
                                analytic);
  }
}

}  // namespace
}  // namespace ae
