// aeplan calibration over the full differential-fuzz corpus (tier2).
//
// Replays the exact 520 known-good workloads of differential_fuzz_test.cpp
// (8 seeds x 40 engine-differential calls + the 200-case farm corpus) as
// one-call programs and asserts, for every one of them, that the measured
// cost of BOTH engine backends lands inside the planner's static envelope:
//
//   * cycle-accurate: cycles in [lower, upper], DMA word counts exact,
//     ZBT transactions inside the bound, Oim high-water under the
//     line-occupancy bound (the envelope is in lines, the sim counts
//     FIFO pixels, so the comparison scales by the line length);
//   * analytic: cycles in [lower, upper] (the estimate is built from the
//     same formulas, so this guards the margin, not the formula).
//
// This is the "no measured cost ever escapes the envelope" soundness gate
// the farm admission control and the AEW302 break-even lint lean on.
#include <gtest/gtest.h>

#include <string>

#include "analysis/planner.hpp"
#include "core/core.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;

/// One corpus case: plan the call statically, run it on both backends,
/// assert every measured quantity respects the envelope.
void expect_cost_inside_envelope(const Call& call, const img::Image& a,
                                 const img::Image* b,
                                 core::EngineBackend& cycle,
                                 core::EngineBackend& analytic) {
  const analysis::CostEnvelope env = analysis::plan_call(call, a.size());

  cycle.execute(call, a, b);
  const core::EngineRunStats& run = cycle.last_run();
  EXPECT_TRUE(env.cycles.contains(run.cycles))
      << "cycle-accurate cycles " << run.cycles << " outside ["
      << env.cycles.lower << ", " << env.cycles.upper << "]";
  EXPECT_EQ(run.words_in, env.dma_words_in);
  EXPECT_EQ(run.words_out, env.dma_words_out);
  EXPECT_TRUE(env.zbt_reads.contains(run.zbt_read_transactions))
      << "zbt reads " << run.zbt_read_transactions << " outside ["
      << env.zbt_reads.lower << ", " << env.zbt_reads.upper << "]";
  EXPECT_TRUE(env.zbt_writes.contains(run.zbt_write_transactions))
      << "zbt writes " << run.zbt_write_transactions << " outside ["
      << env.zbt_writes.lower << ", " << env.zbt_writes.upper << "]";
  const core::ScanSpace space(a.size(), call.scan);
  EXPECT_LE(run.oim_peak, static_cast<u64>(env.oim_peak_lines) *
                              static_cast<u64>(space.line_length()))
      << "oim peak (pixels) above the line-occupancy bound";

  analytic.execute(call, a, b);
  EXPECT_TRUE(env.cycles.contains(analytic.last_run().cycles))
      << "analytic cycles " << analytic.last_run().cycles << " outside ["
      << env.cycles.lower << ", " << env.cycles.upper << "]";
}

// 8 seeds x 40 calls: the engine-differential recipe, replayed verbatim so
// the planner is calibrated on exactly the workloads the simulator is
// already proven bit-exact on.
class PlanCalibrationFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(PlanCalibrationFuzz, MeasuredCostLandsInsideTheEnvelope) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ull);
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);
  core::EngineBackend analytic({}, core::EngineMode::Analytic);

  int segment_cases = 0;
  for (int i = 0; i < 40; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    segment_cases += call.mode == alib::Mode::Segment ? 1 : 0;
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe() +
                 " on " + to_string(size));
    expect_cost_inside_envelope(call, a, needs_b ? &b : nullptr, cycle,
                                analytic);
  }
  EXPECT_GT(segment_cases, 0);  // the hard (non-deterministic-cost) mode
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanCalibrationFuzz,
                         ::testing::Range<u64>(1, 9));

// The 200-case farm corpus (repeating content seeds, all addressing modes).
TEST(PlanCalibrationFarmCorpus, MeasuredCostLandsInsideTheEnvelope) {
  Rng rng(0xD1FFu);
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);
  core::EngineBackend analytic({}, core::EngineMode::Analytic);

  for (int i = 0; i < 200; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    const img::Image a = img::make_test_frame(size, 1 + rng.bounded(6));
    const img::Image b = img::make_test_frame(size, 201 + rng.bounded(6));
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe() +
                 " on " + to_string(size));
    expect_cost_inside_envelope(call, a, needs_b ? &b : nullptr, cycle,
                                analytic);
  }
}

}  // namespace
}  // namespace ae
