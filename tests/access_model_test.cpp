// The memory-access accounting behind Table 2 — the analytic models must
// reproduce the paper's published numbers exactly on CIF frames.
#include <gtest/gtest.h>

#include <cmath>

#include "addresslib/access_model.hpp"
#include "image/image.hpp"

namespace ae::alib {
namespace {

constexpr i64 kCifPixels = 352 * 288;  // 101,376

Call inter_y() { return Call::make_inter(PixelOp::AbsDiff); }

Call intra_con0_y() {
  return Call::make_intra(PixelOp::Copy, Neighborhood::con0());
}

Call intra_con8_y() {
  OpParams p;
  p.coeffs.assign(9, 1);
  p.shift = 3;
  return Call::make_intra(PixelOp::Convolve, Neighborhood::con8(),
                          ChannelMask::y(), ChannelMask::y(), p);
}

Call intra_con8_yuv() {
  return Call::make_intra(PixelOp::MorphGradient, Neighborhood::con8(),
                          ChannelMask::yuv(), ChannelMask::yuv());
}

struct Table2Row {
  const char* label;
  Call call;
  u64 paper_software;
  u64 paper_hardware;
  int paper_saving_percent;
};

std::vector<Table2Row> table2_rows() {
  return {
      {"Inter Y", inter_y(), 304128, 202752, 33},
      {"Intra CON_0 Y", intra_con0_y(), 202752, 202752, 0},
      {"Intra CON_8 Y", intra_con8_y(), 405504, 202752, 50},
      {"Intra CON_8 YUV", intra_con8_yuv(), 608256, 202752, 200},
  };
}

class Table2Model : public ::testing::TestWithParam<int> {};

TEST_P(Table2Model, SoftwareCountMatchesPaper) {
  const Table2Row row = table2_rows()[static_cast<std::size_t>(GetParam())];
  const AccessCounts sw = software_access_model(row.call, kCifPixels);
  EXPECT_EQ(sw.total(), row.paper_software) << row.label;
}

TEST_P(Table2Model, HardwareCountMatchesPaper) {
  const Table2Row row = table2_rows()[static_cast<std::size_t>(GetParam())];
  const AccessCounts hw = hardware_access_model(row.call, kCifPixels);
  EXPECT_EQ(hw.total(), row.paper_hardware) << row.label;
}

TEST_P(Table2Model, SavingColumnReproduced) {
  // The paper's Saving column mixes two formulas: rows 1-3 use
  // (sw-hw)/sw, row 4 uses sw/hw - 1.
  const int index = GetParam();
  const Table2Row row = table2_rows()[static_cast<std::size_t>(index)];
  const AccessCounts sw = software_access_model(row.call, kCifPixels);
  const AccessCounts hw = hardware_access_model(row.call, kCifPixels);
  const double saving = index < 3 ? saving_fraction_of_software(sw, hw)
                                  : saving_speedup_minus_one(sw, hw);
  EXPECT_EQ(static_cast<int>(std::lround(saving * 100.0)),
            row.paper_saving_percent)
      << row.label;
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table2Model, ::testing::Range(0, 4));

TEST(AccessModel, PerPixelCounts) {
  EXPECT_EQ(software_accesses_per_pixel(inter_y()).loads, 2u);
  EXPECT_EQ(software_accesses_per_pixel(inter_y()).stores, 1u);
  EXPECT_EQ(software_accesses_per_pixel(intra_con8_y()).loads, 3u);
  EXPECT_EQ(software_accesses_per_pixel(intra_con8_yuv()).stores, 3u);
}

TEST(AccessModel, SideChannelOpsLoadTwoWords) {
  // An op reading Alfa/Aux needs the second 32-bit word per pixel load.
  OpParams p;
  p.threshold = 10;
  Call c = Call::make_intra(
      PixelOp::Homogeneity, Neighborhood::con8(), ChannelMask::all(),
      ChannelMask::alfa().with(Channel::Aux), p);
  EXPECT_EQ(software_words_per_load(c), 2);
  EXPECT_EQ(software_accesses_per_pixel(c).loads, 6u);  // 3 pixels x 2 words
}

TEST(AccessModel, ColumnScanSymmetry) {
  // A vertical 9-line FIR costs 9 loads/pixel in row-major scan but only 1
  // in column-major scan (fig. 4's point: align strips with the scan).
  OpParams p;
  p.coeffs.assign(9, 1);
  p.shift = 3;
  Call c = Call::make_intra(PixelOp::Convolve, Neighborhood::vline(9),
                            ChannelMask::y(), ChannelMask::y(), p);
  c.scan = ScanOrder::RowMajor;
  EXPECT_EQ(software_accesses_per_pixel(c).loads, 9u);
  c.scan = ScanOrder::ColumnMajor;
  EXPECT_EQ(software_accesses_per_pixel(c).loads, 1u);
}

TEST(AccessModel, SegmentModeReloadsWindow) {
  SegmentSpec spec;
  spec.seeds = {{0, 0}};
  const Call c = Call::make_segment(PixelOp::Copy, Neighborhood::con8(), spec,
                                    ChannelMask::y(),
                                    ChannelMask::y().with(Channel::Alfa));
  EXPECT_EQ(software_accesses_per_pixel(c).loads, 9u);
}

TEST(AccessModel, HardwareCountIndependentOfChannelsAndMode) {
  const u64 pixels = 1000;
  EXPECT_EQ(hardware_access_model(inter_y(), 1000).total(), 2 * pixels);
  EXPECT_EQ(hardware_access_model(intra_con8_yuv(), 1000).total(), 2 * pixels);
}

TEST(AccessModel, RejectsNegativePixelCount) {
  EXPECT_THROW(software_access_model(inter_y(), -1), InvalidArgument);
  EXPECT_THROW(hardware_access_model(inter_y(), -5), InvalidArgument);
}

TEST(AccessModel, SavingFormulasDifferAsInPaper) {
  // 608,256 vs 202,752: 67% by the first formula, 200% by the second — the
  // discrepancy the reproduction documents.
  const AccessCounts sw{608256, 0};
  const AccessCounts hw{202752, 0};
  EXPECT_NEAR(saving_fraction_of_software(sw, hw), 0.6667, 1e-3);
  EXPECT_NEAR(saving_speedup_minus_one(sw, hw), 2.0, 1e-9);
}

}  // namespace
}  // namespace ae::alib
