// GME integration tests on the full simulated system: a frame pair
// estimated entirely through the cycle-accurate engine, and mosaic quality
// against the scripted world.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "gme/mosaic.hpp"
#include "gme/table3.hpp"
#include "image/compare.hpp"

namespace ae::gme {
namespace {

img::SyntheticSequence pan_sequence(int frames) {
  img::SyntheticSequence::Params p;
  p.name = "integration";
  p.frame_size = Size{160, 128};
  p.frame_count = frames;
  p.seed = 55;
  p.script = img::MotionScript{3.0, 0.0, 0.0, 1.0, 0.0};
  return img::SyntheticSequence(p);
}

TEST(GmeIntegration, EstimationThroughCycleAccurateEngine) {
  // Every AddressLib call of a full estimate runs on the simulated board —
  // the slowest, most faithful configuration.
  const auto seq = pan_sequence(2);
  core::EngineBackend engine({}, core::EngineMode::CycleAccurate);
  GmeParams params;
  params.robust_passes = 1;  // keep the cycle-simulated call count modest
  GmeEstimator est(engine, params);
  const Pyramid ref = build_pyramid(engine, seq.frame(0), 3);
  const Pyramid cur = build_pyramid(engine, seq.frame(1), 3);
  const GmeResult r = est.estimate(ref, cur);
  EXPECT_NEAR(r.motion.dx, -3.0, 0.5);
  EXPECT_NEAR(r.motion.dy, 0.0, 0.5);
  // And the engine was really exercised.
  EXPECT_GT(engine.last_run().cycles, 0u);
}

TEST(GmeIntegration, CycleAndAnalyticEstimatesIdentical) {
  // The two engine modes must produce the same motion to the last bit
  // (bit-exact calls in, identical host arithmetic out).
  const auto seq = pan_sequence(2);
  GmeParams params;
  params.robust_passes = 1;

  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);
  GmeEstimator est_c(cycle, params);
  const GmeResult rc = est_c.estimate(build_pyramid(cycle, seq.frame(0), 3),
                                      build_pyramid(cycle, seq.frame(1), 3));

  core::EngineBackend analytic({}, core::EngineMode::Analytic);
  GmeEstimator est_a(analytic, params);
  const GmeResult ra =
      est_a.estimate(build_pyramid(analytic, seq.frame(0), 3),
                     build_pyramid(analytic, seq.frame(1), 3));

  EXPECT_EQ(rc.motion.dx, ra.motion.dx);
  EXPECT_EQ(rc.motion.dy, ra.motion.dy);
  EXPECT_EQ(rc.final_sad, ra.final_sad);
  EXPECT_EQ(rc.iterations, ra.iterations);
}

TEST(GmeIntegration, MosaicMatchesScriptedWorld) {
  // Build the mosaic from estimated motion and compare its center against
  // a frame rendered at the mosaic's viewpoint: high PSNR means the whole
  // chain (estimation, accumulation, compositing) is consistent.
  const auto seq = pan_sequence(8);
  SequenceRunOptions options;
  options.build_mosaic = true;
  const SequenceExperiment e = run_sequence_experiment(seq, options);
  ASSERT_FALSE(e.mosaic.empty());
  EXPECT_LT(e.mean_motion_error_px, 0.6);
  EXPECT_GT(e.mosaic_coverage, 0.75);  // canvas margin stays uncovered

  // The anchor frame must be embedded (nearly) verbatim around its origin.
  const img::Image f0 = seq.frame(0);
  // Locate frame 0 in the canvas: placements put it at the mosaic origin.
  double best_psnr = 0.0;
  for (i32 oy = 0; oy < e.mosaic.height() - f0.height(); ++oy) {
    for (i32 ox = 0; ox < e.mosaic.width() - f0.width(); ++ox) {
      // Only plausible origins: scan a coarse grid for speed.
      if (ox % 4 != 0 || oy % 4 != 0) continue;
      const img::Image crop =
          e.mosaic.crop(Rect{ox, oy, f0.width(), f0.height()});
      best_psnr = std::max(best_psnr, img::psnr_y(crop, f0));
    }
  }
  EXPECT_GT(best_psnr, 24.0);
}

}  // namespace
}  // namespace ae::gme
