// Region-based retrieval tests: descriptor math, signature matching and
// the retrieval property that matters — an image retrieves itself, and
// similar content ranks above dissimilar content.
#include <gtest/gtest.h>

#include "retrieval/database.hpp"
#include "image/synth.hpp"

namespace ae::ret {
namespace {

/// A frame with two controllable regions on a flat background.
img::Image two_region_frame(u8 bg, u8 disk_luma, Point disk_at,
                            u8 rect_luma) {
  img::Image f(Size{96, 64}, img::Pixel::gray(bg));
  img::draw_disk(f, disk_at, 12, img::Pixel::gray(disk_luma));
  img::draw_rect(f, Rect{60, 10, 24, 16}, img::Pixel::gray(rect_luma));
  return f;
}

/// Labels via the segmentation substrate.
img::Image labeled(const img::Image& frame) {
  alib::SoftwareBackend be;
  seg::SegmentationParams params;
  params.min_segment_pixels = 8;
  return seg::segment_image(be, frame, params).labels;
}

TEST(Descriptors, AccumulateBasicStatistics) {
  img::Image f(Size{10, 10}, img::Pixel::gray(100));
  f.fill_channel(Channel::Alfa, 1);
  u64 writes = 0;
  const ImageSignature sig = describe_regions(f, &writes);
  ASSERT_EQ(sig.regions.size(), 1u);
  const RegionDescriptor& d = sig.regions[0];
  EXPECT_EQ(d.pixels, 100);
  EXPECT_DOUBLE_EQ(d.mean_y, 100.0);
  EXPECT_DOUBLE_EQ(d.var_y, 0.0);
  EXPECT_DOUBLE_EQ(d.area_fraction, 1.0);
  EXPECT_DOUBLE_EQ(d.elongation, 1.0);
  EXPECT_DOUBLE_EQ(d.rectangularity, 1.0);
  EXPECT_NEAR(d.centroid_x, 0.45, 0.01);  // mean(0..9)/10
  EXPECT_EQ(writes, 100u);
}

TEST(Descriptors, UnlabeledPixelsIgnored) {
  img::Image f(Size{4, 4}, img::Pixel::gray(10));
  f.at(0, 0).alfa = 2;
  const ImageSignature sig = describe_regions(f);
  ASSERT_EQ(sig.regions.size(), 1u);
  EXPECT_EQ(sig.regions[0].pixels, 1);
}

TEST(Descriptors, DominantSortsBySize) {
  img::Image f(Size{8, 8}, img::Pixel::gray(10));
  f.fill_channel(Channel::Alfa, 1);
  for (i32 x = 0; x < 3; ++x) f.at(x, 0).alfa = 2;
  const ImageSignature sig = describe_regions(f);
  const auto top = sig.dominant(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 1);
  EXPECT_EQ(top[0].pixels, 61);
}

TEST(Descriptors, DistanceIsZeroForIdentical) {
  const ImageSignature sig = describe_regions(labeled(
      two_region_frame(40, 200, {25, 32}, 120)));
  ASSERT_FALSE(sig.regions.empty());
  EXPECT_DOUBLE_EQ(region_distance(sig.regions[0], sig.regions[0]), 0.0);
  EXPECT_NEAR(signature_distance(sig, sig), 0.0, 1e-12);
}

TEST(Descriptors, ColorDifferenceIncreasesDistance) {
  RegionDescriptor a;
  a.mean_y = 100;
  RegionDescriptor b = a;
  b.mean_y = 200;
  EXPECT_GT(region_distance(a, b), region_distance(a, a));
}

TEST(Retrieval, SelfQueryRanksFirst) {
  alib::SoftwareBackend be;
  RegionDatabase db(be);
  const img::Image a = two_region_frame(40, 200, {25, 32}, 120);
  const img::Image b = two_region_frame(90, 60, {50, 20}, 230);
  const img::Image c = img::make_test_frame(Size{96, 64}, 3);
  db.add("a", a);
  db.add("b", b);
  db.add("c", c);
  const std::vector<QueryHit> hits = db.query(a, 3);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].name, "a");
  EXPECT_NEAR(hits[0].distance, 0.0, 1e-9);
  EXPECT_LT(hits[0].distance, hits[1].distance);
}

TEST(Retrieval, SimilarContentOutranksDissimilar) {
  alib::SoftwareBackend be;
  RegionDatabase db(be);
  // "a-like": same scene, slightly shifted disk.
  db.add("a_like", two_region_frame(40, 195, {28, 34}, 125));
  db.add("different", two_region_frame(200, 20, {70, 50}, 15));
  const std::vector<QueryHit> hits =
      db.query(two_region_frame(40, 200, {25, 32}, 120), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].name, "a_like");
}

TEST(Retrieval, CountsLowLevelWork) {
  alib::SoftwareBackend be;
  RegionDatabase db(be);
  db.add("x", two_region_frame(40, 200, {25, 32}, 120));
  EXPECT_GT(db.addresslib_calls(), 0);
  EXPECT_GT(db.low_level().profile.total(), 0u);
}

TEST(Retrieval, EmptyDatabaseRejected) {
  alib::SoftwareBackend be;
  const RegionDatabase db(be);
  EXPECT_THROW(db.query(two_region_frame(40, 200, {25, 32}, 120)),
               InvalidArgument);
}

TEST(Retrieval, BothSegmentersWorkAndSelfRetrieve) {
  // The SCHEMA test-bed point: the retrieval layer is agnostic to which
  // segmentation algorithm produced the regions.
  for (const Segmenter which :
       {Segmenter::RegionGrowing, Segmenter::HistogramThreshold}) {
    alib::SoftwareBackend be;
    RegionDatabase db(be, {}, which);
    const img::Image a = two_region_frame(40, 200, {25, 32}, 120);
    const img::Image b = two_region_frame(200, 20, {70, 50}, 15);
    db.add("a", a);
    db.add("b", b);
    const std::vector<QueryHit> hits = db.query(a, 2);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].name, "a")
        << (which == Segmenter::RegionGrowing ? "grow" : "threshold");
  }
}

TEST(Retrieval, DeterministicRanking) {
  alib::SoftwareBackend be;
  RegionDatabase db(be);
  for (u64 s = 1; s <= 4; ++s)
    db.add("img" + std::to_string(s),
           img::make_test_frame(Size{96, 64}, s));
  const img::Image probe = img::make_test_frame(Size{96, 64}, 2);
  const auto h1 = db.query(probe, 4);
  const auto h2 = db.query(probe, 4);
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t i = 0; i < h1.size(); ++i) {
    EXPECT_EQ(h1[i].name, h2[i].name);
    EXPECT_DOUBLE_EQ(h1[i].distance, h2[i].distance);
  }
  EXPECT_EQ(h1[0].name, "img2");  // self-similar frame wins
}

}  // namespace
}  // namespace ae::ret
