// Unit tests for the common substrate: channel masks, geometry, PRNG,
// formatting, error machinery and the annotated sync primitives.
#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/sync.hpp"
#include "common/types.hpp"

namespace ae {
namespace {

TEST(ChannelMask, NamedMasksContainExpectedChannels) {
  EXPECT_TRUE(ChannelMask::y().contains(Channel::Y));
  EXPECT_FALSE(ChannelMask::y().contains(Channel::U));
  EXPECT_TRUE(ChannelMask::yuv().contains(Channel::V));
  EXPECT_FALSE(ChannelMask::yuv().contains(Channel::Alfa));
  EXPECT_TRUE(ChannelMask::all().contains(Channel::Aux));
  EXPECT_TRUE(ChannelMask::none().empty());
}

TEST(ChannelMask, WithWithoutRoundTrip) {
  const ChannelMask m = ChannelMask::y().with(Channel::Aux);
  EXPECT_TRUE(m.contains(Channel::Aux));
  EXPECT_EQ(m.without(Channel::Aux), ChannelMask::y());
}

TEST(ChannelMask, CountMatchesPopcount) {
  EXPECT_EQ(ChannelMask::none().count(), 0);
  EXPECT_EQ(ChannelMask::y().count(), 1);
  EXPECT_EQ(ChannelMask::yuv().count(), 3);
  EXPECT_EQ(ChannelMask::all().count(), 5);
}

TEST(ChannelMask, VideoAndSideClassification) {
  EXPECT_TRUE(ChannelMask::yuv().has_video());
  EXPECT_FALSE(ChannelMask::yuv().has_side());
  EXPECT_TRUE(ChannelMask::alfa().has_side());
  EXPECT_FALSE(ChannelMask::alfa().has_video());
}

TEST(ChannelMask, ToStringListsChannels) {
  EXPECT_EQ(to_string(ChannelMask::yuv()), "Y,U,V");
  EXPECT_EQ(to_string(ChannelMask::none()), "-");
  EXPECT_EQ(to_string(ChannelMask::alfa()), "Alfa");
}

TEST(Geometry, PointArithmetic) {
  EXPECT_EQ((Point{1, 2} + Point{3, 4}), (Point{4, 6}));
  EXPECT_EQ((Point{5, 5} - Point{2, 3}), (Point{3, 2}));
}

TEST(Geometry, Distances) {
  EXPECT_EQ(chebyshev({0, 0}, {3, -4}), 4);
  EXPECT_EQ(chebyshev({2, 2}, {2, 2}), 0);
  EXPECT_EQ(manhattan({0, 0}, {3, -4}), 7);
}

TEST(Geometry, SizeContainsAndArea) {
  const Size s{4, 3};
  EXPECT_EQ(s.area(), 12);
  EXPECT_TRUE(s.contains({0, 0}));
  EXPECT_TRUE(s.contains({3, 2}));
  EXPECT_FALSE(s.contains({4, 0}));
  EXPECT_FALSE(s.contains({0, -1}));
}

TEST(Geometry, RectIntersect) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 10, 10};
  EXPECT_EQ(a.intersect(b), (Rect{5, 5, 5, 5}));
  EXPECT_TRUE(a.intersect(Rect{20, 20, 3, 3}).empty());
  EXPECT_EQ(a.intersect(a), a);
}

TEST(Geometry, RectUnite) {
  const Rect a{0, 0, 2, 2};
  const Rect b{5, 5, 1, 1};
  EXPECT_EQ(a.unite(b), (Rect{0, 0, 6, 6}));
  EXPECT_EQ(Rect{}.unite(b), b);
  EXPECT_EQ(b.unite(Rect{}), b);
}

TEST(Geometry, RectContains) {
  const Rect r{2, 3, 4, 5};
  EXPECT_TRUE(r.contains({2, 3}));
  EXPECT_TRUE(r.contains({5, 7}));
  EXPECT_FALSE(r.contains({6, 3}));
  EXPECT_FALSE(r.contains({2, 8}));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.bounded(0), InvalidArgument);
}

TEST(Rng, UniformCoversClosedInterval) {
  Rng rng(3);
  std::array<bool, 5> seen{};
  for (int i = 0; i < 500; ++i) {
    const i32 v = rng.uniform(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen[static_cast<std::size_t>(v + 2)] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(3, 2), InvalidArgument);
}

TEST(Format, MinSecMatchesPaperNotation) {
  EXPECT_EQ(format_minsec(275.0), "4'35''");
  EXPECT_EQ(format_minsec(64.0), "1'04''");
  EXPECT_EQ(format_minsec(0.0), "0'00''");
  EXPECT_EQ(format_minsec(745.0), "12'25''");
}

TEST(Format, MinSecRejectsNegative) {
  EXPECT_THROW(format_minsec(-1.0), InvalidArgument);
}

TEST(Format, ThousandsUsesPaperSeparator) {
  EXPECT_EQ(format_thousands(304128), "304.128");
  EXPECT_EQ(format_thousands(0), "0");
  EXPECT_EQ(format_thousands(999), "999");
  EXPECT_EQ(format_thousands(1000), "1.000");
  EXPECT_EQ(format_thousands(1234567), "1.234.567");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.333), "33%");
  EXPECT_EQ(format_percent(2.0), "200%");
  EXPECT_EQ(format_percent(0.0), "0%");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(5.0, 0), "5");
}

TEST(Format, TextTableAlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"xxx", "1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| a   | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| xxx | 1           |"), std::string::npos);
}

TEST(Format, TextTableRejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Errors, MacrosThrowTypedExceptions) {
  EXPECT_THROW(AE_EXPECTS(false, "nope"), InvalidArgument);
  EXPECT_THROW(AE_ASSERT(false, "broken"), InvariantViolation);
  EXPECT_NO_THROW(AE_EXPECTS(true, "fine"));
}

TEST(Errors, MessageCarriesContext) {
  try {
    AE_EXPECTS(1 == 2, "math works");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math works"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(RunningStats, WelfordBasics) {
  RunningStats s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SingleOwnerChecker, SequentialOwnersAreFine) {
  sync::SingleOwnerChecker checker;
  { sync::SingleOwnerChecker::Scope scope(checker); }
  { sync::SingleOwnerChecker::Scope scope(checker); }
  std::thread other([&checker] {
    EXPECT_NO_THROW(sync::SingleOwnerChecker::Scope scope(checker));
  });
  other.join();
}

// The contract regression behind ResilientSession::execute: a second thread
// entering a single-owner object while the first is still inside must fail
// loudly (InvariantViolation) rather than race on the driver state.
TEST(SingleOwnerChecker, ConcurrentEntryThrows) {
  sync::SingleOwnerChecker checker;
  const sync::SingleOwnerChecker::Scope outer(checker);
  std::thread intruder([&checker] {
    EXPECT_THROW(sync::SingleOwnerChecker::Scope scope(checker),
                 InvariantViolation);
  });
  intruder.join();
}

}  // namespace
}  // namespace ae
