// Differential fuzzing (tier2): hundreds of seeded random calls across all
// four addressing schemes of the paper (interframe, intraframe,
// segment-based, segment-indexed side table), asserting bit-exactness of
//
//   * the cycle-accurate engine simulator against the software backend
//     (single-engine differential), and
//   * a multi-shard EngineFarm fed by concurrent clients against a serial
//     software sweep of the same workload (farm differential) — scheduling,
//     affinity routing and strip pipelining must be invisible in results.
//
// The generator lives in test_util.hpp (random_any_call) so every suite
// fuzzes the same call space.  520 cases total, all seeded/deterministic.
#include <gtest/gtest.h>

#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "serve/farm.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;

class DifferentialSimVsSoftware : public ::testing::TestWithParam<u64> {};

// 8 seeds x 40 calls = 320 differential cases against the cycle simulator.
TEST_P(DifferentialSimVsSoftware, RandomCallsAreBitExact) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ull);
  alib::SoftwareBackend sw;
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);

  int segment_cases = 0;
  for (int i = 0; i < 40; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    segment_cases += call.mode == alib::Mode::Segment ? 1 : 0;
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe() +
                 " on " + to_string(size));

    const alib::CallResult ref = sw.execute(call, a, needs_b ? &b : nullptr);
    const alib::CallResult out =
        cycle.execute(call, a, needs_b ? &b : nullptr);
    test::expect_results_equal(ref, out);
  }
  // The ~20% segment share of random_any_call actually materializes, so
  // the segment-indexed table is fuzzed every seed, not by accident.
  EXPECT_GT(segment_cases, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSimVsSoftware,
                         ::testing::Range<u64>(1, 9));

// 200 differential cases against a 4-shard farm fed by 4 client threads.
TEST(DifferentialFarmVsSerial, ConcurrentFarmMatchesSerialSweep) {
  struct Item {
    Call call;
    img::Image a;
    img::Image b;
    bool needs_b = false;
    alib::CallResult ref;
  };

  Rng rng(0xD1FFu);
  alib::SoftwareBackend sw;
  std::deque<Item> items;
  for (int i = 0; i < 200; ++i) {
    Item item;
    const Size size = test::random_frame_size(rng);
    item.call = test::random_any_call(rng, size, item.needs_b);
    // A handful of repeating seeds: the same frame content recurs across
    // the workload, so affinity routing and residency reuse are active
    // parts of the system under test, not idle code paths.
    item.a = img::make_test_frame(size, 1 + rng.bounded(6));
    item.b = img::make_test_frame(size, 201 + rng.bounded(6));
    item.ref = sw.execute(item.call, item.a,
                          item.needs_b ? &item.b : nullptr);
    items.push_back(std::move(item));
  }

  serve::FarmOptions options;
  options.shards = 4;
  serve::EngineFarm farm(options);

  constexpr std::size_t kClients = 4;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&farm, &items, c] {
      std::vector<std::pair<std::size_t, std::future<alib::CallResult>>>
          futures;
      for (std::size_t i = c; i < items.size(); i += kClients)
        futures.emplace_back(i,
                             farm.submit(items[i].call, items[i].a,
                                         items[i].needs_b ? &items[i].b
                                                          : nullptr));
      for (auto& [index, future] : futures) {
        SCOPED_TRACE("case " + std::to_string(index) + ": " +
                     items[index].call.describe());
        test::expect_results_equal(items[index].ref, future.get());
      }
    });
  }
  for (auto& t : clients) t.join();

  farm.drain();
  const serve::FarmStats stats = farm.stats();
  EXPECT_EQ(stats.completed, 200);
  // The farm actually farmed: more than one shard served calls.
  int active_shards = 0;
  for (const serve::ShardStats& s : stats.shards)
    active_shards += s.calls > 0 ? 1 : 0;
  EXPECT_GT(active_shards, 1);
}

}  // namespace
}  // namespace ae
