// Differential fuzzing: hundreds of seeded random calls across all four
// addressing schemes of the paper (interframe, intraframe, segment-based,
// segment-indexed side table), asserting bit-exactness of
//
//   * the specialized kernel backend against the functional interpreter
//     (KernelVsFunctional*, tier1 — this is the correctness gate of the
//     host hot path, across thread counts and band grains),
//   * the cycle-accurate engine simulator against the software backend
//     (single-engine differential, tier2), and
//   * a multi-shard EngineFarm fed by concurrent clients against a serial
//     software sweep of the same workload (farm differential, tier2) —
//     scheduling, affinity routing and strip pipelining must be invisible
//     in results.
//
// The generator lives in test_util.hpp (random_any_call) so every suite
// fuzzes the same call space.  All cases are seeded/deterministic.
#include <gtest/gtest.h>

#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "addresslib/kernels/kernel_backend.hpp"
#include "common/parallel.hpp"
#include "core/core.hpp"
#include "serve/farm.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;

// ---- kernel backend vs functional interpreter (tier1) ----------------------

/// Pools of 1, 2 and 8 lanes plus deliberately awkward band grains; the
/// kernel backend's contract is that none of this is visible in results.
struct KernelConfigs {
  par::ThreadPool pool1{1};
  par::ThreadPool pool2{2};
  par::ThreadPool pool8{8};

  template <typename Fn>
  void for_each(Fn&& fn) {
    fn(alib::KernelBackend({&pool1, 16}), "threads=1 grain=16");
    fn(alib::KernelBackend({&pool2, 3}), "threads=2 grain=3");
    fn(alib::KernelBackend({&pool8, 1}), "threads=8 grain=1");
  }
};

class KernelVsFunctional : public ::testing::TestWithParam<u64> {};

// 8 seeds x 40 calls = 320 random cases, each checked on three pool/grain
// combinations against the interpreter.  Segment calls (~20% of the mix)
// exercise the transparent fallback path.
TEST_P(KernelVsFunctional, RandomCallsAreBitExactAcrossThreadCounts) {
  Rng rng(GetParam() * 0xA24BAED4963EE407ull);
  KernelConfigs configs;
  for (int i = 0; i < 40; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    const alib::CallResult ref =
        alib::execute_functional(call, a, needs_b ? &b : nullptr);
    configs.for_each([&](const alib::KernelBackend& kernels,
                         const char* config) {
      SCOPED_TRACE("case " + std::to_string(i) + " [" + config + "]: " +
                   call.describe() + " on " + to_string(size));
      test::expect_results_equal(
          ref, kernels.execute(call, a, needs_b ? &b : nullptr));
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelVsFunctional, ::testing::Range<u64>(1, 9));

// Degenerate frame shapes: single pixel, single row/column, odd strides —
// the interior/border split must collapse gracefully (often to an all-border
// frame) and still agree with the interpreter.
TEST(KernelVsFunctionalEdge, DegenerateFrameShapes) {
  static const Size kSizes[] = {{1, 1}, {7, 1}, {1, 9},
                                {33, 1}, {2, 2}, {17, 3}};
  Rng rng(0xED6Eu);
  KernelConfigs configs;
  for (const Size size : kSizes) {
    for (const Call& call : test::representative_intra_calls()) {
      const img::Image a = img::make_test_frame(size, rng.next_u64());
      const alib::CallResult ref = alib::execute_functional(call, a);
      configs.for_each([&](const alib::KernelBackend& kernels,
                           const char* config) {
        SCOPED_TRACE(std::string("[") + config + "] " + call.describe() +
                     " on " + to_string(size));
        test::expect_results_equal(ref, kernels.execute(call, a));
      });
    }
    for (const Call& call : test::representative_inter_calls()) {
      const img::Image a = img::make_test_frame(size, rng.next_u64());
      const img::Image b = img::make_test_frame(size, rng.next_u64());
      const alib::CallResult ref = alib::execute_functional(call, a, &b);
      configs.for_each([&](const alib::KernelBackend& kernels,
                           const char* config) {
        SCOPED_TRACE(std::string("[") + config + "] " + call.describe() +
                     " on " + to_string(size));
        test::expect_results_equal(ref, kernels.execute(call, a, &b));
      });
    }
  }
}

// Channel masks that include the 16-bit side channels: the random generator
// sticks to video masks (the engine suites share it), so the Alfa/Aux write
// paths of the kernels get explicit coverage here.
TEST(KernelVsFunctionalMasks, SideChannelMasksAreBitExact) {
  const ChannelMask all = ChannelMask::all();
  const ChannelMask side =
      ChannelMask{ChannelMask::alfa().bits() | ChannelMask::aux().bits()};
  const ChannelMask y_aux = ChannelMask::y().with(Channel::Aux);

  std::vector<Call> calls;
  for (const ChannelMask mask : {all, side, y_aux}) {
    calls.push_back(Call::make_inter(alib::PixelOp::Add, mask, mask));
    calls.push_back(Call::make_inter(alib::PixelOp::AbsDiff, mask, mask));
    calls.push_back(Call::make_inter(alib::PixelOp::BitXor, mask, mask));
    calls.push_back(Call::make_inter(alib::PixelOp::Sad, mask, mask));
    {
      alib::OpParams p;
      p.threshold = 500;  // above the 8-bit range: discriminates 16-bit taps
      calls.push_back(
          Call::make_inter(alib::PixelOp::DiffMask, mask, mask, p));
    }
    {
      alib::OpParams p;
      p.scale_num = 5;
      p.shift = 1;
      p.bias = -7;
      calls.push_back(Call::make_intra(alib::PixelOp::Scale,
                                       alib::Neighborhood::con0(), mask, mask,
                                       p));
    }
    {
      alib::OpParams p;
      p.threshold = 300;
      calls.push_back(Call::make_intra(alib::PixelOp::Threshold,
                                       alib::Neighborhood::con0(), mask, mask,
                                       p));
    }
    calls.push_back(Call::make_intra(alib::PixelOp::Median,
                                     alib::Neighborhood::con8(), mask, mask));
    calls.push_back(Call::make_intra(alib::PixelOp::Dilate,
                                     alib::Neighborhood::con4(), mask, mask));
  }

  Rng rng(0x51DEu);
  KernelConfigs configs;
  for (const Call& call : calls) {
    const Size size{33, 17};
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    const img::Image* pb = call.mode == alib::Mode::Inter ? &b : nullptr;
    const alib::CallResult ref = alib::execute_functional(call, a, pb);
    configs.for_each([&](const alib::KernelBackend& kernels,
                         const char* config) {
      SCOPED_TRACE(std::string("[") + config + "] " + call.describe());
      test::expect_results_equal(ref, kernels.execute(call, a, pb));
    });
  }
}

// Adversarial flood masks (test_util.hpp): content chosen to stress the
// traversal structurally — checkerboard claim-tie storms, a spiral corridor
// at maximal geodesic depth, an all-seed frame, a label barrier with a
// blocked seed.  Beyond results, the traversal accounting (processed
// pixels, criterion tests) must also match: the engine cost models price
// from those counters.
TEST(KernelVsFunctionalAdversarial, FloodMasksAreBitExact) {
  KernelConfigs configs;
  for (const test::AdversarialFloodCase& c : test::adversarial_flood_cases()) {
    alib::SegmentRunInfo ref_info;
    const alib::CallResult ref =
        alib::execute_functional(c.call, c.frame, nullptr, ref_info);
    configs.for_each([&](const alib::KernelBackend& kernels,
                         const char* config) {
      SCOPED_TRACE(std::string(c.name) + " [" + config + "]: " +
                   c.call.describe());
      alib::SegmentRunInfo info;
      test::expect_results_equal(ref,
                                 kernels.execute(c.call, c.frame, nullptr,
                                                 info));
      EXPECT_EQ(ref_info.processed_pixels, info.processed_pixels);
      EXPECT_EQ(ref_info.criterion_tests, info.criterion_tests);
    });
  }
}

// ---- engine / farm differentials (tier2) -----------------------------------

class DifferentialSimVsSoftware : public ::testing::TestWithParam<u64> {};

// 8 seeds x 40 calls = 320 differential cases against the cycle simulator.
TEST_P(DifferentialSimVsSoftware, RandomCallsAreBitExact) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ull);
  alib::SoftwareBackend sw;
  core::EngineBackend cycle({}, core::EngineMode::CycleAccurate);

  int segment_cases = 0;
  for (int i = 0; i < 40; ++i) {
    const Size size = test::random_frame_size(rng);
    bool needs_b = false;
    const Call call = test::random_any_call(rng, size, needs_b);
    segment_cases += call.mode == alib::Mode::Segment ? 1 : 0;
    const img::Image a = img::make_test_frame(size, rng.next_u64());
    const img::Image b = img::make_test_frame(size, rng.next_u64());
    SCOPED_TRACE("case " + std::to_string(i) + ": " + call.describe() +
                 " on " + to_string(size));

    const alib::CallResult ref = sw.execute(call, a, needs_b ? &b : nullptr);
    const alib::CallResult out =
        cycle.execute(call, a, needs_b ? &b : nullptr);
    test::expect_results_equal(ref, out);
  }
  // The ~20% segment share of random_any_call actually materializes, so
  // the segment-indexed table is fuzzed every seed, not by accident.
  EXPECT_GT(segment_cases, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSimVsSoftware,
                         ::testing::Range<u64>(1, 9));

// 200 differential cases against a 4-shard farm fed by 4 client threads.
TEST(DifferentialFarmVsSerial, ConcurrentFarmMatchesSerialSweep) {
  struct Item {
    Call call;
    img::Image a;
    img::Image b;
    bool needs_b = false;
    alib::CallResult ref;
  };

  Rng rng(0xD1FFu);
  alib::SoftwareBackend sw;
  std::deque<Item> items;
  for (int i = 0; i < 200; ++i) {
    Item item;
    const Size size = test::random_frame_size(rng);
    item.call = test::random_any_call(rng, size, item.needs_b);
    // A handful of repeating seeds: the same frame content recurs across
    // the workload, so affinity routing and residency reuse are active
    // parts of the system under test, not idle code paths.
    item.a = img::make_test_frame(size, 1 + rng.bounded(6));
    item.b = img::make_test_frame(size, 201 + rng.bounded(6));
    item.ref = sw.execute(item.call, item.a,
                          item.needs_b ? &item.b : nullptr);
    items.push_back(std::move(item));
  }

  serve::FarmOptions options;
  options.shards = 4;
  serve::EngineFarm farm(options);

  constexpr std::size_t kClients = 4;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&farm, &items, c] {
      std::vector<std::pair<std::size_t, std::future<alib::CallResult>>>
          futures;
      for (std::size_t i = c; i < items.size(); i += kClients)
        futures.emplace_back(i,
                             farm.submit(items[i].call, items[i].a,
                                         items[i].needs_b ? &items[i].b
                                                          : nullptr));
      for (auto& [index, future] : futures) {
        SCOPED_TRACE("case " + std::to_string(index) + ": " +
                     items[index].call.describe());
        test::expect_results_equal(items[index].ref, future.get());
      }
    });
  }
  for (auto& t : clients) t.join();

  farm.drain();
  const serve::FarmStats stats = farm.stats();
  EXPECT_EQ(stats.completed, 200);
  // The farm actually farmed: more than one shard served calls.
  int active_shards = 0;
  for (const serve::ShardStats& s : stats.shards)
    active_shards += s.calls > 0 ? 1 : 0;
  EXPECT_GT(active_shards, 1);
}

}  // namespace
}  // namespace ae
