// Tests for the synthetic sequence generator standing in for the paper's
// MPEG-1 material: determinism, scripted pose bookkeeping, and the basic
// photometric property GME relies on (frame content follows the camera).
#include <gtest/gtest.h>

#include <cmath>

#include "image/compare.hpp"
#include "image/sequence.hpp"

namespace ae::img {
namespace {

SyntheticSequence::Params tiny_params() {
  SyntheticSequence::Params p;
  p.name = "tiny";
  p.frame_size = Size{96, 64};
  p.frame_count = 8;
  p.seed = 77;
  p.script = MotionScript{2.0, 1.0, 0.0, 1.0, 0.0};
  return p;
}

TEST(Sequence, DeterministicFrames) {
  const SyntheticSequence a(tiny_params());
  const SyntheticSequence b(tiny_params());
  EXPECT_EQ(a.frame(3), b.frame(3));
}

TEST(Sequence, PoseAccumulatesScript) {
  const SyntheticSequence seq(tiny_params());
  const CameraPose p0 = seq.pose(0);
  const CameraPose p5 = seq.pose(5);
  EXPECT_DOUBLE_EQ(p0.center_x, 0.0);
  EXPECT_NEAR(p5.center_x - p0.center_x, 5 * 2.0, 1e-9);
  EXPECT_NEAR(p5.center_y - p0.center_y, 5 * 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(p5.zoom, 1.0);
}

TEST(Sequence, JitterPerturbsButStaysDeterministic) {
  SyntheticSequence::Params p = tiny_params();
  p.script.jitter = 0.5;
  const SyntheticSequence a(p);
  const SyntheticSequence b(p);
  EXPECT_NE(a.pose(5).center_x, 5 * 2.0);  // jitter moved it
  EXPECT_DOUBLE_EQ(a.pose(5).center_x, b.pose(5).center_x);
}

TEST(Sequence, FrameIndexValidated) {
  const SyntheticSequence seq(tiny_params());
  EXPECT_THROW(seq.pose(-1), InvalidArgument);
  EXPECT_THROW(seq.pose(8), InvalidArgument);
  EXPECT_THROW(seq.frame(99), InvalidArgument);
}

TEST(Sequence, BadParamsRejected) {
  SyntheticSequence::Params p = tiny_params();
  p.frame_count = 0;
  EXPECT_THROW(SyntheticSequence{p}, InvalidArgument);
  p = tiny_params();
  p.script.zoom_rate = 0.0;
  EXPECT_THROW(SyntheticSequence{p}, InvalidArgument);
}

TEST(Sequence, PanShiftsContent) {
  // With a pure integer pan, frame t+1 equals frame t translated: compare a
  // central crop.
  SyntheticSequence::Params p = tiny_params();
  p.script = MotionScript{3.0, 0.0, 0.0, 1.0, 0.0};
  const SyntheticSequence seq(p);
  const Image f0 = seq.frame(0);
  const Image f1 = seq.frame(1);
  const Image inner0 = f0.crop(Rect{13, 10, 60, 40});
  const Image inner1 = f1.crop(Rect{10, 10, 60, 40});
  // f1 sampled 3 px to the right of f0: f1(x) == f0(x+3).
  EXPECT_LT(mse_y(inner0, inner1), 2.0);
}

TEST(Sequence, WorldLumaMatchesRenderedFrame) {
  const SyntheticSequence seq(tiny_params());
  const Image f0 = seq.frame(0);
  const CameraPose pose = seq.pose(0);
  double wx = 0.0;
  double wy = 0.0;
  pose.to_world(20, 30, 96, 64, wx, wy);
  EXPECT_NEAR(f0.at(20, 30).y, seq.world_luma(wx, wy), 1.0);
}

TEST(Sequence, PaperPresetsAreCifAndDistinct) {
  for (const PaperSequence which : all_paper_sequences()) {
    const auto params = paper_sequence_params(which);
    EXPECT_EQ(params.frame_size, formats::kCif);
    EXPECT_GT(params.frame_count, 100);
  }
  // Pisa is roughly twice the others (its paper runtime is ~2x).
  EXPECT_GT(paper_sequence_params(PaperSequence::Pisa).frame_count,
            paper_sequence_params(PaperSequence::Dome).frame_count * 3 / 2);
  EXPECT_EQ(to_string(PaperSequence::Singapore), "Singapore");
}

TEST(Sequence, FramesHaveTexture) {
  // GME needs gradients: the frame must not be flat.
  const SyntheticSequence seq(tiny_params());
  const Image f = seq.frame(0);
  i64 distinct = 0;
  for (i32 x = 1; x < f.width(); ++x)
    if (f.at(x, 32).y != f.at(x - 1, 32).y) ++distinct;
  EXPECT_GT(distinct, f.width() / 4);
}

}  // namespace
}  // namespace ae::img
