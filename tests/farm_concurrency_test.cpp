// EngineFarm under real concurrency (tier2): many client threads, shard
// failover mid-stream, shutdown while busy, stats hammering.  Every test
// holds the farm to bit-exact agreement with the serial software backend —
// scheduling order, shard count and transport faults must never leak into
// results.  Run under ThreadSanitizer via -DAE_TSAN=ON.
#include <gtest/gtest.h>

#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "serve/farm.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::PixelOp;
using serve::EngineFarm;
using serve::FarmOptions;
using serve::FarmStats;

/// One pre-generated unit of work: the call, its input frames (stable
/// storage — the farm borrows them until the future resolves) and the
/// serial software reference computed up front.
struct WorkItem {
  Call call;
  img::Image a;
  img::Image b;
  bool needs_b = false;
  alib::CallResult ref;
};

/// Builds a deterministic workload.  Frame seeds repeat (4 per size) so the
/// same content recurs across items and affinity routing has something to
/// chew on, like a video pipeline revisiting reference frames.
std::deque<WorkItem> make_workload(u64 seed, int count) {
  Rng rng(seed);
  alib::SoftwareBackend sw;
  std::deque<WorkItem> items;
  for (int i = 0; i < count; ++i) {
    WorkItem item;
    const Size size = test::random_frame_size(rng);
    item.call = test::random_any_call(rng, size, item.needs_b);
    item.a = img::make_test_frame(size, 1 + rng.bounded(4));
    item.b = img::make_test_frame(size, 101 + rng.bounded(4));
    item.ref = sw.execute(item.call, item.a,
                          item.needs_b ? &item.b : nullptr);
    items.push_back(std::move(item));
  }
  return items;
}

void submit_and_check(EngineFarm& farm, std::deque<WorkItem>& items,
                      std::size_t begin, std::size_t stride) {
  std::vector<std::pair<std::size_t, std::future<alib::CallResult>>> futures;
  for (std::size_t i = begin; i < items.size(); i += stride) {
    WorkItem& item = items[i];
    futures.emplace_back(
        i, farm.submit(item.call, item.a, item.needs_b ? &item.b : nullptr));
  }
  for (auto& [index, future] : futures) {
    SCOPED_TRACE("workload item " + std::to_string(index) + ": " +
                 items[index].call.describe());
    test::expect_results_equal(items[index].ref, future.get());
  }
}

TEST(FarmConcurrency, EightClientThreadsStayBitExact) {
  std::deque<WorkItem> items = make_workload(0xFA51, 200);
  FarmOptions options;
  options.shards = 4;
  EngineFarm farm(options);

  constexpr std::size_t kClients = 8;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back(
        [&farm, &items, c] { submit_and_check(farm, items, c, kClients); });
  for (auto& t : clients) t.join();

  farm.drain();
  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.submitted, 200);
  EXPECT_EQ(stats.completed, 200);
  i64 shard_calls = 0;
  for (const serve::ShardStats& s : stats.shards) shard_calls += s.calls;
  EXPECT_EQ(shard_calls, 200);
  // Repeating frame content must pay off even with 8 clients interleaving.
  i64 reused = 0;
  for (const serve::ShardStats& s : stats.shards)
    reused += s.session.inputs_reused;
  EXPECT_GT(reused, 0);
}

TEST(FarmConcurrency, ShardFailoverMidStreamStaysBitExact) {
  // Shard 1's transport corrupts every readback word: each engine attempt
  // exhausts its re-read budget, the whole-call retry fails the same way,
  // and after two such calls shard 1's breaker opens.  The farm keeps
  // serving: shard 1 answers from its software fallback, routing prefers
  // the healthy shards, and every result stays bit-exact throughout.
  std::deque<WorkItem> items = make_workload(0xFA52, 80);
  FarmOptions options;
  options.shards = 4;
  options.resilient.max_call_retries = 1;
  options.resilient.breaker_threshold = 2;
  options.resilient.breaker_cooldown_calls = 1000;  // stay open for the test
  options.shard_faults.resize(2);                   // shard 0 stays clean
  options.shard_faults[1].readback_corrupt_rate = 1.0;

  EngineFarm farm(options);
  constexpr std::size_t kClients = 4;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back(
        [&farm, &items, c] { submit_and_check(farm, items, c, kClients); });
  for (auto& t : clients) t.join();

  farm.drain();
  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.completed, 80);
  const serve::ShardStats& faulty = stats.shards[1];
  EXPECT_NE(faulty.breaker, core::BreakerState::Closed);
  EXPECT_GT(faulty.resilient.fallback_calls, 0);
  EXPECT_GT(faulty.resilient.transport_failures, 0);
  // The fault domain is the shard: the rest of the farm never fell back.
  for (const std::size_t s : {0ul, 2ul, 3ul}) {
    EXPECT_EQ(stats.shards[s].resilient.fallback_calls, 0) << "shard " << s;
    EXPECT_GT(stats.shards[s].resilient.engine_calls, 0) << "shard " << s;
  }
}

TEST(FarmConcurrency, ShutdownWhileBusyDrainsEverything) {
  std::deque<WorkItem> items = make_workload(0xFA53, 64);
  auto farm = std::make_unique<EngineFarm>();
  std::vector<std::future<alib::CallResult>> futures;
  for (WorkItem& item : items)
    futures.push_back(farm->submit(item.call, item.a,
                                   item.needs_b ? &item.b : nullptr));
  // Shutdown with the queue still full: it must drain, not drop.
  farm->shutdown();
  const FarmStats stats = farm->stats();
  EXPECT_EQ(stats.completed, 64);
  for (std::size_t i = 0; i < futures.size(); ++i)
    test::expect_results_equal(items[i].ref, futures[i].get());
  // Destroying an already-shut-down farm is a no-op.
  farm.reset();
}

TEST(FarmConcurrency, StatsSnapshotsDuringTrafficAreConsistent) {
  std::deque<WorkItem> items = make_workload(0xFA54, 60);
  FarmOptions options;
  options.shards = 2;
  EngineFarm farm(options);

  std::thread client([&farm, &items] { submit_and_check(farm, items, 0, 1); });
  // Hammer stats() while traffic flows; every snapshot must be internally
  // sane (TSan checks the synchronization, we check the invariants).
  for (int i = 0; i < 200; ++i) {
    const FarmStats stats = farm.stats();
    EXPECT_LE(stats.completed, stats.submitted);
    EXPECT_GE(stats.affinity_hits, 0);
    i64 shard_calls = 0;
    for (const serve::ShardStats& s : stats.shards) shard_calls += s.calls;
    EXPECT_LE(shard_calls, stats.submitted);
    std::this_thread::yield();
  }
  client.join();
  farm.drain();
  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
}

}  // namespace
}  // namespace ae
