// Tests for the outlook models: dynamic partial reconfiguration of the
// stage-3 block and the standard-cell ASIC projection.
#include <gtest/gtest.h>

#include "core/asic.hpp"
#include "core/reconfig.hpp"
#include "image/synth.hpp"
#include "test_util.hpp"

namespace ae::core {
namespace {

TEST(Reconfig, FirstCallLoadsModule) {
  ReconfigurableEngine engine;
  const img::Image a = test::small_frame();
  EXPECT_FALSE(engine.loaded_module().has_value());
  engine.execute(alib::Call::make_intra(alib::PixelOp::Erode,
                                        alib::Neighborhood::con8()),
                 a);
  ASSERT_TRUE(engine.loaded_module().has_value());
  EXPECT_EQ(*engine.loaded_module(), alib::PixelOp::Erode);
  EXPECT_EQ(engine.swaps(), 1);
}

TEST(Reconfig, RepeatedOpDoesNotSwap) {
  ReconfigurableEngine engine;
  const img::Image a = test::small_frame();
  const alib::Call call = alib::Call::make_intra(alib::PixelOp::Dilate,
                                                 alib::Neighborhood::con4());
  const alib::CallResult first = engine.execute(call, a);
  const alib::CallResult second = engine.execute(call, a);
  EXPECT_EQ(engine.swaps(), 1);
  EXPECT_GT(first.stats.cycles, second.stats.cycles);  // swap charged once
}

TEST(Reconfig, AlternatingOpsThrash) {
  ReconfigurableEngine engine;
  const img::Image a = test::small_frame();
  const alib::Call erode = alib::Call::make_intra(alib::PixelOp::Erode,
                                                  alib::Neighborhood::con8());
  const alib::Call dilate = alib::Call::make_intra(alib::PixelOp::Dilate,
                                                   alib::Neighborhood::con8());
  for (int i = 0; i < 3; ++i) {
    engine.execute(erode, a);
    engine.execute(dilate, a);
  }
  EXPECT_EQ(engine.swaps(), 6);
  EXPECT_GT(engine.reconfig_cycles_total(), 0u);
}

TEST(Reconfig, OutputsUnaffectedBySwaps) {
  ReconfigurableEngine reconfig;
  EngineBackend plain({}, EngineMode::Analytic);
  const img::Image a = test::small_frame();
  const alib::Call call = alib::Call::make_intra(alib::PixelOp::Median,
                                                 alib::Neighborhood::con8());
  test::expect_images_equal(reconfig.execute(call, a).output,
                            plain.execute(call, a).output);
}

TEST(Reconfig, SwapCostScalesWithModuleSize) {
  const ReconfigModel model;
  // Convolve's datapath is bigger than Copy's, so its bitstream is bigger.
  EXPECT_GT(op_module_luts(alib::PixelOp::Convolve),
            op_module_luts(alib::PixelOp::Copy));
  EXPECT_GE(reconfiguration_cycles(model, alib::PixelOp::Convolve),
            reconfiguration_cycles(model, alib::PixelOp::Copy));
  // Tiny modules still pay the configuration-frame floor.
  EXPECT_GE(reconfiguration_cycles(model, alib::PixelOp::Copy),
            model.swap_setup_cycles +
                static_cast<u64>(model.min_bitstream_bytes));
}

TEST(Reconfig, NameAdvertisesWrapper) {
  EXPECT_NE(ReconfigurableEngine().name().find("/reconfig"),
            std::string::npos);
}

TEST(Asic, ProjectionIsPhysicallyPlausible) {
  const AsicEstimate e = project_asic(EngineConfig{});
  EXPECT_GT(e.logic_gates, 1000.0);
  EXPECT_LT(e.logic_gates, 100'000.0);  // the datapath is small
  EXPECT_GT(e.sram_kbit, 100.0);        // line buffers dominate
  EXPECT_GT(e.area_mm2, 0.1);
  EXPECT_LT(e.area_mm2, 20.0);
  EXPECT_GT(e.max_clock_mhz, 200.0);  // "further performance optimization"
  EXPECT_GT(e.power_mw_at_clock, e.power_mw_at_bus_clock);
  EXPECT_LT(e.power_mw_at_bus_clock, 500.0);  // "power optimization"
}

TEST(Asic, ClockGainAppliedToFpgaFmax) {
  AsicTechnology tech;
  tech.clock_gain = 2.0;
  const AsicEstimate e = project_asic(EngineConfig{}, tech);
  const ResourceEstimate fpga = estimate_resources(EngineConfig{});
  EXPECT_NEAR(e.max_clock_mhz, fpga.max_frequency_mhz() * 2.0, 1e-6);
}

TEST(Asic, SramTracksBufferDepth) {
  EngineConfig deeper;
  deeper.iim_lines = 32;
  deeper.strip_lines = 32;
  EXPECT_GT(project_asic(deeper).sram_kbit,
            project_asic(EngineConfig{}).sram_kbit);
}

}  // namespace
}  // namespace ae::core
