// Property-based tests over the pixel operations: algebraic identities
// (morphological duality, convolution linearity, ordering relations,
// conservation laws) checked across whole frames and multiple seeds.
#include <gtest/gtest.h>

#include "addresslib/functional.hpp"
#include "image/synth.hpp"

namespace ae::alib {
namespace {

class OpProperties : public ::testing::TestWithParam<u64> {
 protected:
  img::Image frame() const {
    return img::make_test_frame(Size{40, 32}, GetParam());
  }
  img::Image run(const Call& call, const img::Image& a,
                 const img::Image* b = nullptr) const {
    return execute_functional(call, a, b).output;
  }
};

TEST_P(OpProperties, ErodeDilateDuality) {
  // dilate(I) == invert(erode(invert(I))) on Y.
  const img::Image a = frame();
  img::Image inverted = a;
  for (auto& px : inverted.pixels()) px.y = static_cast<u8>(255 - px.y);

  const Call dilate = Call::make_intra(PixelOp::Dilate, Neighborhood::con8());
  const Call erode = Call::make_intra(PixelOp::Erode, Neighborhood::con8());
  const img::Image lhs = run(dilate, a);
  img::Image rhs = run(erode, inverted);
  for (auto& px : rhs.pixels()) px.y = static_cast<u8>(255 - px.y);
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x)
      ASSERT_EQ(lhs.ref(x, y).y, rhs.ref(x, y).y) << x << "," << y;
}

TEST_P(OpProperties, ErodeBelowCenterBelowDilate) {
  const img::Image a = frame();
  const img::Image lo = run(Call::make_intra(PixelOp::Erode,
                                             Neighborhood::con8()),
                            a);
  const img::Image hi = run(Call::make_intra(PixelOp::Dilate,
                                             Neighborhood::con8()),
                            a);
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x) {
      ASSERT_LE(lo.ref(x, y).y, a.ref(x, y).y);
      ASSERT_GE(hi.ref(x, y).y, a.ref(x, y).y);
    }
}

TEST_P(OpProperties, MedianBoundedByErodeAndDilate) {
  const img::Image a = frame();
  const img::Image med = run(Call::make_intra(PixelOp::Median,
                                              Neighborhood::con8()),
                             a);
  const img::Image lo = run(Call::make_intra(PixelOp::Erode,
                                             Neighborhood::con8()),
                            a);
  const img::Image hi = run(Call::make_intra(PixelOp::Dilate,
                                             Neighborhood::con8()),
                            a);
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x) {
      ASSERT_GE(med.ref(x, y).y, lo.ref(x, y).y);
      ASSERT_LE(med.ref(x, y).y, hi.ref(x, y).y);
    }
}

TEST_P(OpProperties, MorphGradientIsDilateMinusErode) {
  const img::Image a = frame();
  const img::Image grad = run(Call::make_intra(PixelOp::MorphGradient,
                                               Neighborhood::con8()),
                              a);
  const img::Image lo = run(Call::make_intra(PixelOp::Erode,
                                             Neighborhood::con8()),
                            a);
  const img::Image hi = run(Call::make_intra(PixelOp::Dilate,
                                             Neighborhood::con8()),
                            a);
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x)
      ASSERT_EQ(grad.ref(x, y).y, hi.ref(x, y).y - lo.ref(x, y).y);
}

TEST_P(OpProperties, ConvolutionIsLinearWithoutClamping) {
  // Keep values small so no clamping occurs: dim frame, tiny coefficients.
  img::Image a = frame();
  for (auto& px : a.pixels()) px.y = static_cast<u8>(px.y / 8);  // <= 31

  auto conv = [&](std::vector<i32> coeffs) {
    OpParams p;
    p.coeffs = std::move(coeffs);
    return run(Call::make_intra(PixelOp::Convolve, Neighborhood::con8(),
                                ChannelMask::y(), ChannelMask::y(), p),
               a);
  };
  const img::Image via_k1 = conv({1, 0, 0, 0, 1, 0, 0, 0, 0});
  const img::Image via_k2 = conv({0, 1, 0, 0, 0, 0, 0, 0, 1});
  const img::Image via_sum = conv({1, 1, 0, 0, 1, 0, 0, 0, 1});
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x)
      ASSERT_EQ(via_sum.ref(x, y).y,
                via_k1.ref(x, y).y + via_k2.ref(x, y).y);
}

TEST_P(OpProperties, GradientMagConsistentWithComponents) {
  // Use a dim frame so neither component clamps.
  img::Image a = frame();
  for (auto& px : a.pixels()) px.y = static_cast<u8>(px.y / 8);
  const img::Image gx = run(Call::make_intra(PixelOp::GradientX,
                                             Neighborhood::con8()),
                            a);
  const img::Image gy = run(Call::make_intra(PixelOp::GradientY,
                                             Neighborhood::con8()),
                            a);
  const img::Image mag = run(Call::make_intra(PixelOp::GradientMag,
                                              Neighborhood::con8()),
                             a);
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x)
      ASSERT_EQ(mag.ref(x, y).y,
                (gx.ref(x, y).y + gy.ref(x, y).y) / 2);
}

TEST_P(OpProperties, HistogramIsConservedAcrossScanOrders) {
  const img::Image a = frame();
  Call call = Call::make_intra(PixelOp::Histogram, Neighborhood::con0());
  const CallResult row = execute_functional(call, a);
  call.scan = ScanOrder::ColumnMajor;
  const CallResult col = execute_functional(call, a);
  u64 total = 0;
  for (std::size_t i = 0; i < row.side.histogram.size(); ++i) {
    EXPECT_EQ(row.side.histogram[i], col.side.histogram[i]);
    total += row.side.histogram[i];
  }
  EXPECT_EQ(total, static_cast<u64>(a.pixel_count()));
}

TEST_P(OpProperties, SadIsSymmetric) {
  const img::Image a = frame();
  const img::Image b = img::make_test_frame(a.size(), GetParam() + 100);
  const Call call = Call::make_inter(PixelOp::Sad);
  EXPECT_EQ(execute_functional(call, a, &b).side.sad,
            execute_functional(call, b, &a).side.sad);
}

TEST_P(OpProperties, DiffMaskMonotoneInThreshold) {
  const img::Image a = frame();
  const img::Image b = img::make_test_frame(a.size(), GetParam() + 55);
  auto mask_count = [&](i32 threshold) {
    OpParams p;
    p.threshold = threshold;
    const img::Image m = run(Call::make_inter(PixelOp::DiffMask,
                                              ChannelMask::y(),
                                              ChannelMask::y(), p),
                             a, &b);
    i64 n = 0;
    for (const auto& px : m.pixels()) n += px.y == 255 ? 1 : 0;
    return n;
  };
  EXPECT_GE(mask_count(4), mask_count(16));
  EXPECT_GE(mask_count(16), mask_count(64));
}

TEST_P(OpProperties, ThresholdIsIdempotent) {
  const img::Image a = frame();
  OpParams p;
  p.threshold = 100;
  const Call call = Call::make_intra(PixelOp::Threshold, Neighborhood::con0(),
                                     ChannelMask::y(), ChannelMask::y(), p);
  const img::Image once = run(call, a);
  const img::Image twice = run(call, once);
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x)
      ASSERT_EQ(once.ref(x, y).y, twice.ref(x, y).y);
}

TEST_P(OpProperties, MinMaxPartitionTheRange) {
  const img::Image a = frame();
  const img::Image b = img::make_test_frame(a.size(), GetParam() + 7);
  const img::Image lo = run(Call::make_inter(PixelOp::Min), a, &b);
  const img::Image hi = run(Call::make_inter(PixelOp::Max), a, &b);
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x) {
      ASSERT_EQ(static_cast<int>(lo.ref(x, y).y) + hi.ref(x, y).y,
                static_cast<int>(a.ref(x, y).y) + b.ref(x, y).y);
    }
}

TEST_P(OpProperties, AverageBetweenMinAndMax) {
  const img::Image a = frame();
  const img::Image b = img::make_test_frame(a.size(), GetParam() + 7);
  const img::Image avg = run(Call::make_inter(PixelOp::Average), a, &b);
  const img::Image lo = run(Call::make_inter(PixelOp::Min), a, &b);
  const img::Image hi = run(Call::make_inter(PixelOp::Max), a, &b);
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x) {
      ASSERT_GE(avg.ref(x, y).y, lo.ref(x, y).y);
      ASSERT_LE(avg.ref(x, y).y, hi.ref(x, y).y);
    }
}

TEST_P(OpProperties, GradientPackMatchesComponentMagnitudes) {
  img::Image a = frame();
  for (auto& px : a.pixels()) px.y = static_cast<u8>(px.y / 8);
  const img::Image packed =
      run(Call::make_intra(PixelOp::GradientPack, Neighborhood::con8(),
                           ChannelMask::y(),
                           ChannelMask::alfa().with(Channel::Aux)),
          a);
  const img::Image gx = run(Call::make_intra(PixelOp::GradientX,
                                             Neighborhood::con8()),
                            a);
  for (i32 y = 0; y < a.height(); ++y)
    for (i32 x = 0; x < a.width(); ++x) {
      const i32 signed_gx =
          static_cast<i32>(packed.ref(x, y).alfa) - kGradBias;
      ASSERT_EQ(std::abs(signed_gx), gx.ref(x, y).y);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpProperties,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace ae::alib
