// Intermediate memory tests: IIM line windowing, in-order fill contracts,
// inter-mode FIFO split; OIM FIFO discipline and capacity.
#include <gtest/gtest.h>

#include "core/iim.hpp"
#include "core/oim.hpp"

namespace ae::core {
namespace {

EngineConfig cfg() { return EngineConfig{}; }

void fill_line(Iim& iim, int image, i32 line, i32 length, u8 luma) {
  for (i32 pos = 0; pos < length; ++pos)
    iim.store(image, line, pos, img::Pixel::gray(luma));
}

TEST(Iim, LineBecomesReadyWhenComplete) {
  Iim iim(cfg(), 8, 32, 1);
  EXPECT_FALSE(iim.line_ready(0, 0));
  for (i32 pos = 0; pos < 7; ++pos)
    iim.store(0, 0, pos, img::Pixel::gray(1));
  EXPECT_FALSE(iim.line_ready(0, 0));
  iim.store(0, 0, 7, img::Pixel::gray(1));
  EXPECT_TRUE(iim.line_ready(0, 0));
  EXPECT_EQ(iim.next_line_to_fill(0), 1);
}

TEST(Iim, ReadReturnsStoredPixels) {
  Iim iim(cfg(), 4, 32, 1);
  for (i32 pos = 0; pos < 4; ++pos)
    iim.store(0, 0, pos, img::Pixel::gray(static_cast<u8>(10 + pos)));
  EXPECT_EQ(iim.read(0, 0, 2).y, 12);
}

TEST(Iim, OutOfOrderStoresRejected) {
  Iim iim(cfg(), 8, 32, 1);
  EXPECT_THROW(iim.store(0, 1, 0, img::Pixel{}), InvariantViolation);
  iim.store(0, 0, 0, img::Pixel{});
  EXPECT_THROW(iim.store(0, 0, 5, img::Pixel{}), InvariantViolation);
}

TEST(Iim, CapacityBlocksUntilRelease) {
  Iim iim(cfg(), 4, 64, 1);
  const i32 cap = iim.capacity_lines(0);
  EXPECT_EQ(cap, cfg().iim_lines);
  for (i32 l = 0; l < cap; ++l) fill_line(iim, 0, l, 4, 1);
  EXPECT_FALSE(iim.slot_free(0));  // ring full
  iim.release_below(0, 1);        // free line 0
  EXPECT_TRUE(iim.slot_free(0));
  fill_line(iim, 0, cap, 4, 2);
  EXPECT_TRUE(iim.line_ready(0, cap));
  EXPECT_FALSE(iim.line_ready(0, 0));  // evicted
}

TEST(Iim, ReadOfEvictedLineCaught) {
  Iim iim(cfg(), 4, 64, 1);
  fill_line(iim, 0, 0, 4, 1);
  iim.release_below(0, 1);
  EXPECT_THROW(iim.read(0, 0, 0), InvariantViolation);
}

TEST(Iim, InterModeSplitsCapacity) {
  Iim iim(cfg(), 4, 64, 2);
  EXPECT_EQ(iim.capacity_lines(0), cfg().iim_lines / 2);
  EXPECT_EQ(iim.capacity_lines(1), cfg().iim_lines / 2);
  fill_line(iim, 0, 0, 4, 1);
  fill_line(iim, 1, 0, 4, 2);
  EXPECT_EQ(iim.read(0, 0, 0).y, 1);
  EXPECT_EQ(iim.read(1, 0, 0).y, 2);
}

TEST(Iim, ParallelReadAccounting) {
  Iim iim(cfg(), 4, 64, 1);
  iim.note_parallel_read(9);
  iim.note_parallel_read(3);
  EXPECT_EQ(iim.parallel_reads(), 2u);
  EXPECT_EQ(iim.block_reads(), 12u);
}

TEST(Iim, SlotFreeFalseWhenAllFetched) {
  Iim iim(cfg(), 4, 2, 1);
  fill_line(iim, 0, 0, 4, 1);
  fill_line(iim, 0, 1, 4, 1);
  EXPECT_FALSE(iim.slot_free(0));
  EXPECT_EQ(iim.next_line_to_fill(0), 2);
}

TEST(Iim, StorageBitsFormula) {
  // 16 lines x 2 blocks x 352 px x 32 bit.
  EXPECT_EQ(Iim::storage_bits(cfg()), 16LL * 2 * 352 * 32);
}

TEST(Oim, FifoOrderPreserved) {
  Oim oim(cfg(), 8);
  oim.push({img::Pixel::gray(1), 100});
  oim.push({img::Pixel::gray(2), 101});
  EXPECT_EQ(oim.front().result_addr, 100);
  oim.pop();
  EXPECT_EQ(oim.front().pixel.y, 2);
}

TEST(Oim, CapacityIsLinesTimesLength) {
  Oim oim(cfg(), 8);
  EXPECT_EQ(oim.capacity_pixels(), cfg().oim_lines * 8);
  for (i64 i = 0; i < oim.capacity_pixels(); ++i)
    oim.push({img::Pixel{}, i});
  EXPECT_TRUE(oim.full());
  EXPECT_THROW(oim.push({img::Pixel{}, 999}), InvariantViolation);
  oim.pop();
  EXPECT_FALSE(oim.full());
}

TEST(Oim, EmptyAccessCaught) {
  Oim oim(cfg(), 4);
  EXPECT_THROW(oim.front(), InvariantViolation);
  EXPECT_THROW(oim.pop(), InvariantViolation);
}

TEST(Oim, PeakOccupancyTracked) {
  Oim oim(cfg(), 4);
  oim.push({img::Pixel{}, 0});
  oim.push({img::Pixel{}, 1});
  oim.pop();
  oim.push({img::Pixel{}, 2});
  EXPECT_EQ(oim.peak_occupancy(), 2u);
  EXPECT_EQ(oim.pushes(), 3u);
}

TEST(Oim, BadConstruction) {
  EXPECT_THROW(Oim(cfg(), 0), InvalidArgument);
}

TEST(Iim, BadConstruction) {
  EXPECT_THROW(Iim(cfg(), 0, 10, 1), InvalidArgument);
  EXPECT_THROW(Iim(cfg(), 4, 10, 3), InvalidArgument);
}

}  // namespace
}  // namespace ae::core
