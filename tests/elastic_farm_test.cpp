// Elastic farm: shard checkpoint/restore, live resharding, and chaos-gated
// recovery (serve/snapshot.hpp + the EngineFarm elastic control surface).
//
// Tier split (tests/CMakeLists.txt): the snapshot wire-format property
// tests and the quick elastic-operation tests run as tier1; the chaos
// differential fuzz — hundreds of random programs racing shard kills,
// restores and live resharding, every result held bit-exact against the
// serial software reference — is tier2 (suite name contains "Chaos").
#include <gtest/gtest.h>

#include <deque>
#include <future>
#include <vector>

#include "serve/farm.hpp"
#include "serve/snapshot.hpp"
#include "test_util.hpp"

namespace ae {
namespace {

using alib::Call;
using alib::PixelOp;
using serve::EngineFarm;
using serve::FarmOptions;
using serve::FarmStats;
using serve::ResidentFrame;
using serve::ShardSnapshot;

// The per-shard accounting identity the elastic layer must preserve: the
// shard clock is exactly the driver's serial cycle sum, minus pipelining
// savings, plus the priced elastic work (restores, migrations, snapshot
// clock fast-forwards).
void expect_shard_identity(const FarmStats& stats) {
  for (const serve::ShardStats& s : stats.shards)
    EXPECT_EQ(s.busy_cycles + s.overlap_cycles_saved,
              s.resilient.cycles + s.elastic_cycles);
}

ShardSnapshot sample_snapshot(Rng& rng) {
  ShardSnapshot s;
  s.shard_index = 3;
  s.clock_cycles = 123'456'789;
  s.breaker = {core::BreakerState::HalfOpen, 2, 5};
  const img::Image f0 = img::make_test_frame(Size{24, 18}, 5);
  const img::Image f1 = img::make_test_frame(Size{48, 32}, 6);
  s.residency.input_slots[0] = {0xAAAA, 7, false};
  s.residency.input_slots[1] = {0xBBBB, 9, true};
  s.residency.result_hash = 0xCCCC;
  s.residency.use_clock = 11;
  s.frames.push_back({0xAAAA, f0});
  s.frames.push_back({0xBBBB, f1});
  for (int i = 0; i < 6; ++i) {
    bool needs_b = false;
    s.queued.push_back(test::random_any_call(rng, Size{48, 32}, needs_b));
  }
  return s;
}

// --- Snapshot wire format (property tests) ---------------------------------

TEST(SnapshotFormatTest, RoundTripIsIdentity) {
  Rng rng(0x51A9u);
  const ShardSnapshot original = sample_snapshot(rng);
  const std::vector<u8> blob = serve::serialize_snapshot(original);

  const ShardSnapshot parsed = serve::parse_snapshot(blob);
  EXPECT_EQ(parsed.shard_index, original.shard_index);
  EXPECT_EQ(parsed.clock_cycles, original.clock_cycles);
  EXPECT_EQ(parsed.breaker.state, original.breaker.state);
  EXPECT_EQ(parsed.breaker.consecutive_failed_calls,
            original.breaker.consecutive_failed_calls);
  EXPECT_EQ(parsed.breaker.cooldown_used, original.breaker.cooldown_used);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parsed.residency.input_slots[i].hash,
              original.residency.input_slots[i].hash);
    EXPECT_EQ(parsed.residency.input_slots[i].last_use,
              original.residency.input_slots[i].last_use);
    EXPECT_EQ(parsed.residency.input_slots[i].transient,
              original.residency.input_slots[i].transient);
  }
  EXPECT_EQ(parsed.residency.result_hash, original.residency.result_hash);
  EXPECT_EQ(parsed.residency.use_clock, original.residency.use_clock);
  ASSERT_EQ(parsed.frames.size(), original.frames.size());
  for (std::size_t i = 0; i < parsed.frames.size(); ++i) {
    EXPECT_EQ(parsed.frames[i].hash, original.frames[i].hash);
    test::expect_images_equal(original.frames[i].content,
                              parsed.frames[i].content);
  }
  ASSERT_EQ(parsed.queued.size(), original.queued.size());
  // Serialize-of-parse reproduces the exact bytes: nothing in any call or
  // frame field is lossy, reordered or defaulted.
  EXPECT_EQ(serve::serialize_snapshot(parsed), blob);
}

TEST(SnapshotFormatTest, DegenerateEmptySnapshotRoundTrips) {
  const ShardSnapshot empty;
  const std::vector<u8> blob = serve::serialize_snapshot(empty);
  const ShardSnapshot parsed = serve::parse_snapshot(blob);
  EXPECT_EQ(parsed.frames.size(), 0u);
  EXPECT_EQ(parsed.queued.size(), 0u);
  EXPECT_EQ(parsed.clock_cycles, 0u);
  EXPECT_EQ(serve::serialize_snapshot(parsed), blob);
}

TEST(SnapshotFormatTest, SingleBitCorruptionAnywhereIsRejected) {
  Rng rng(0x51AAu);
  const std::vector<u8> blob =
      serve::serialize_snapshot(sample_snapshot(rng));
  // Sample byte positions across the whole blob (payload, framing fields
  // and the CRC trailer all included); flip one bit at each.
  const std::size_t step = std::max<std::size_t>(1, blob.size() / 64);
  for (std::size_t at = 0; at < blob.size(); at += step) {
    if (at == 4 || at == 5 || at == 6 || at == 7) continue;  // version field
    std::vector<u8> rotten = blob;
    rotten[at] ^= static_cast<u8>(1u << (at % 8));
    EXPECT_THROW(serve::parse_snapshot(rotten), serve::SnapshotCorruption)
        << "bit flip at byte " << at << " was not detected";
  }
}

TEST(SnapshotFormatTest, TruncationAndBadFramingAreRejected) {
  Rng rng(0x51ABu);
  const std::vector<u8> blob =
      serve::serialize_snapshot(sample_snapshot(rng));
  std::vector<u8> truncated = blob;
  truncated.pop_back();
  EXPECT_THROW(serve::parse_snapshot(truncated), serve::SnapshotCorruption);
  EXPECT_THROW(serve::parse_snapshot(std::vector<u8>{}),
               serve::SnapshotCorruption);
  std::vector<u8> bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(serve::parse_snapshot(bad_magic), serve::SnapshotCorruption);
}

TEST(SnapshotFormatTest, VersionMismatchIsItsOwnError) {
  Rng rng(0x51ACu);
  std::vector<u8> blob = serve::serialize_snapshot(sample_snapshot(rng));
  blob[4] = static_cast<u8>(serve::kSnapshotVersion + 1);
  try {
    serve::parse_snapshot(blob);
    FAIL() << "future-versioned blob was accepted";
  } catch (const serve::SnapshotVersionMismatch& e) {
    EXPECT_EQ(e.found(), serve::kSnapshotVersion + 1);
    EXPECT_EQ(e.expected(), serve::kSnapshotVersion);
  }
}

TEST(SnapshotFormatTest, InjectorRotIsCountedAndDetected) {
  Rng rng(0x51ADu);
  core::FaultPlan plan;
  plan.snapshot_corrupt_rate = 1.0;
  core::FaultInjector injector(plan);
  const std::vector<u8> blob =
      serve::serialize_snapshot(sample_snapshot(rng), &injector);
  EXPECT_EQ(injector.counters().snapshots_corrupted, 1u);
  EXPECT_THROW(serve::parse_snapshot(blob), serve::SnapshotCorruption);
}

// --- Elastic operations (tier1, quick) -------------------------------------

TEST(ElasticFarmTest, WarmRecoveryRestoresResidencyAfterKill) {
  FarmOptions options;
  options.shards = 1;
  EngineFarm farm(options);
  alib::SoftwareBackend sw;
  const img::Image x = test::small_frame(7);
  const Call call = Call::make_intra(PixelOp::GradientMag,
                                     alib::Neighborhood::con8());
  const alib::CallResult ref = sw.execute(call, x);

  test::expect_results_equal(ref, farm.execute(call, x));
  test::expect_results_equal(ref, farm.execute(call, x));  // x now resident
  EXPECT_GT(farm.stats().shards[0].session.inputs_reused, 0);

  const std::vector<u8> blob = farm.snapshot_shard(0);
  EXPECT_FALSE(blob.empty());
  farm.kill_shard(0);
  // The dead board still answers — from software fallback, bit-exact.
  test::expect_results_equal(ref, farm.execute(call, x));
  const FarmStats dead = farm.stats();
  EXPECT_EQ(dead.shards[0].breaker, core::BreakerState::Open);
  EXPECT_GT(dead.shards[0].resilient.fallback_calls, 0);

  EXPECT_TRUE(farm.recover_shard(0));
  const i64 reused_before = farm.stats().shards[0].session.inputs_reused;
  test::expect_results_equal(ref, farm.execute(call, x));
  const FarmStats after = farm.stats();
  EXPECT_GT(after.shards[0].session.inputs_reused, reused_before)
      << "warm recovery should bring the frame's residency back";
  EXPECT_EQ(after.shards[0].breaker, core::BreakerState::Closed);
  EXPECT_EQ(after.snapshots_taken, 1);
  EXPECT_EQ(after.warm_recoveries, 1);
  EXPECT_EQ(after.restores, 1);
  EXPECT_GT(after.shards[0].elastic_cycles, 0u);
  expect_shard_identity(after);
}

TEST(ElasticFarmTest, RecoveryWithoutASnapshotComesUpCold) {
  FarmOptions options;
  options.shards = 1;
  EngineFarm farm(options);
  const img::Image x = test::small_frame(8);
  const Call call = Call::make_intra(PixelOp::Copy,
                                     alib::Neighborhood::con0());
  farm.execute(call, x);
  farm.kill_shard(0);
  EXPECT_FALSE(farm.recover_shard(0));
  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.cold_recoveries, 1);
  EXPECT_EQ(stats.warm_recoveries, 0);
  EXPECT_EQ(stats.restores, 0);
  EXPECT_EQ(stats.shards[0].breaker, core::BreakerState::Closed);
}

TEST(ElasticFarmTest, ElasticChurnUnderLoadDropsNoAcceptedWork) {
  FarmOptions options;
  options.shards = 2;
  EngineFarm farm(options);
  alib::SoftwareBackend sw;
  const img::Image a = test::small_frame();
  const img::Image b = test::small_frame_b();
  const Call call = Call::make_inter(PixelOp::AbsDiff);
  const alib::CallResult ref = sw.execute(call, a, &b);

  std::vector<std::future<alib::CallResult>> futures;
  for (int i = 0; i < 40; ++i) futures.push_back(farm.submit(call, a, &b));
  // Elastic churn while the backlog is live: every queued-but-unstarted
  // request must survive each quiesce/steal/requeue cycle.
  const std::vector<u8> blob = farm.snapshot_shard(0);
  farm.restore_shard(0, blob);
  farm.kill_shard(1);
  farm.recover_shard(1);
  for (auto& f : futures) test::expect_results_equal(ref, f.get());
  farm.drain();

  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.submitted, 40);
  EXPECT_EQ(stats.completed, 40);
  EXPECT_EQ(stats.snapshots_taken, 1);
  EXPECT_EQ(stats.restores, 1);     // the explicit restore; recovery was cold
  EXPECT_EQ(stats.cold_recoveries, 1);
  expect_shard_identity(stats);
}

TEST(ElasticFarmTest, ResizeUnderLoadStaysBitExact) {
  FarmOptions options;
  options.shards = 2;
  EngineFarm farm(options);
  alib::SoftwareBackend sw;
  const img::Image x = test::small_frame(3);
  const img::Image y = test::small_frame_b(4);
  const Call call = Call::make_intra(PixelOp::GradientMag,
                                     alib::Neighborhood::con8());
  const alib::CallResult ref_x = sw.execute(call, x);
  const alib::CallResult ref_y = sw.execute(call, y);

  std::vector<std::future<alib::CallResult>> futures;
  const auto wave = [&] {
    for (int i = 0; i < 6; ++i) {
      futures.push_back(farm.submit(call, x));
      futures.push_back(farm.submit(call, y));
    }
  };
  wave();
  farm.resize(4);
  EXPECT_EQ(farm.shard_count(), 4);
  wave();
  farm.resize(1);
  EXPECT_EQ(farm.shard_count(), 1);
  wave();
  for (std::size_t i = 0; i < futures.size(); ++i)
    test::expect_results_equal(i % 2 == 0 ? ref_x : ref_y, futures[i].get());
  farm.drain();

  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.submitted, 36);
  EXPECT_EQ(stats.completed, 36);
  EXPECT_EQ(stats.shards.size(), 1u);
  expect_shard_identity(stats);
}

TEST(ElasticFarmTest, RebalanceMigratesResidentFramesToFreshShards) {
  FarmOptions options;
  options.shards = 1;
  EngineFarm farm(options);
  alib::SoftwareBackend sw;
  const img::Image x = test::small_frame(5);
  const img::Image y = test::small_frame_b(6);
  const Call call = Call::make_intra(PixelOp::GradientMag,
                                     alib::Neighborhood::con8());
  farm.execute(call, x);
  farm.execute(call, y);  // shard 0 now holds several resident frames

  farm.resize(2);         // shard 1 arrives empty
  const int moved = farm.rebalance();
  EXPECT_GT(moved, 0);
  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.frames_migrated, moved);
  EXPECT_GT(stats.migration_pci_words, 0u);
  EXPECT_GT(stats.shards[1].elastic_cycles, 0u);
  expect_shard_identity(stats);

  // The farm still answers bit-exactly for both frames after migration.
  test::expect_results_equal(sw.execute(call, x), farm.execute(call, x));
  test::expect_results_equal(sw.execute(call, y), farm.execute(call, y));
}

TEST(ElasticFarmTest, RestoreRejectsRottenBlobAndKeepsServing) {
  FarmOptions options;
  options.shards = 1;
  core::FaultPlan rot;
  rot.snapshot_corrupt_rate = 1.0;  // every snapshot decays at rest
  options.shard_faults = {rot};
  EngineFarm farm(options);
  alib::SoftwareBackend sw;
  const img::Image x = test::small_frame(9);
  const Call call = Call::make_intra(PixelOp::Copy,
                                     alib::Neighborhood::con0());
  test::expect_results_equal(sw.execute(call, x), farm.execute(call, x));

  const std::vector<u8> blob = farm.snapshot_shard(0);
  EXPECT_THROW(farm.restore_shard(0, blob), serve::SnapshotCorruption);
  // Rejecting the blob left the shard serving with its previous state.
  test::expect_results_equal(sw.execute(call, x), farm.execute(call, x));
  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.snapshots_taken, 1);
  EXPECT_EQ(stats.restores, 0);
  EXPECT_EQ(stats.shards[0].resilient.detections.snapshot_checksum_mismatches,
            1u);
}

TEST(ElasticFarmTest, RestoreTimeTransportFaultsDegradeFramesToCold) {
  FarmOptions options;
  options.shards = 1;
  core::FaultPlan noisy;
  noisy.restore_corrupt_rate = 1.0;  // every restored word flips in flight
  options.shard_faults = {noisy};
  EngineFarm farm(options);
  alib::SoftwareBackend sw;
  const img::Image x = test::small_frame(10);

  // A hand-built snapshot with one resident frame: the restore streams it
  // through the shard's adversarial transport, every attempt fails its
  // frame CRC, and the frame degrades to cold instead of poisoning the
  // board — the restore itself still succeeds.
  ShardSnapshot snapshot;
  const u64 hash = core::frame_content_hash(x);
  snapshot.residency.input_slots[0] = {hash, 1, false};
  snapshot.residency.use_clock = 1;
  snapshot.frames.push_back({hash, x});
  farm.restore_shard(0, serve::serialize_snapshot(snapshot));

  const Call call = Call::make_intra(PixelOp::Copy,
                                     alib::Neighborhood::con0());
  test::expect_results_equal(sw.execute(call, x), farm.execute(call, x));
  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.restores, 1);
  EXPECT_GT(stats.shards[0].resilient.detections.restore_crc_mismatches, 0u);
  EXPECT_GT(stats.shards[0].resilient.faults.restore_words_corrupted, 0u);
  EXPECT_GT(stats.shards[0].elastic_cycles, 0u);  // retries are still priced
  expect_shard_identity(stats);
}

TEST(ElasticFarmTest, SchedulerTraceRecordsElasticEvents) {
  FarmOptions options;
  options.shards = 2;
  EngineFarm farm(options);
  core::EngineTrace trace;
  farm.set_scheduler_trace(&trace);
  const img::Image x = test::small_frame(12);
  const Call call = Call::make_intra(PixelOp::Copy,
                                     alib::Neighborhood::con0());
  farm.execute(call, x);

  farm.snapshot_shard(0);
  farm.kill_shard(0);
  farm.recover_shard(0);
  farm.resize(3);
  farm.resize(1);
  farm.rebalance();

  EXPECT_EQ(trace.count(core::TraceEvent::SnapshotTaken), 1u);
  EXPECT_EQ(trace.count(core::TraceEvent::ShardKilled), 1u);
  EXPECT_EQ(trace.count(core::TraceEvent::ShardRestored), 1u);
  EXPECT_EQ(trace.count(core::TraceEvent::ShardCountChanged), 2u);
  farm.set_scheduler_trace(nullptr);
}

TEST(ElasticFarmTest, ElasticOperationsValidateShardIndices) {
  FarmOptions options;
  options.shards = 2;
  EngineFarm farm(options);
  EXPECT_THROW(farm.snapshot_shard(-1), InvalidArgument);
  EXPECT_THROW(farm.kill_shard(2), InvalidArgument);
  EXPECT_THROW(farm.recover_shard(99), InvalidArgument);
  EXPECT_THROW(farm.resize(0), InvalidArgument);
}

// --- Chaos gate (tier2) ----------------------------------------------------

// Differential fuzz with seeded chaos: hundreds of random programs flow
// through a farm whose shards are snapshotted, killed, warm/cold recovered,
// restored from (possibly rotten) blobs, resized and rebalanced mid-stream,
// with one shard on an adversarial transport throughout.  The gate: every
// accepted program completes (zero drops) and every result is bit-exact
// against the serial software reference.
TEST(ElasticChaosTest, DifferentialFuzzSurvivesShardChurn) {
  Rng rng(0xE1A57Cu);
  FarmOptions options;
  options.shards = 3;
  core::FaultPlan faulty;
  faulty.seed = 99;
  faulty.dma_corrupt_rate = 0.002;
  faulty.readback_corrupt_rate = 0.001;
  faulty.zbt_flip_rate = 0.0005;
  faulty.snapshot_corrupt_rate = 0.05;
  faulty.restore_corrupt_rate = 0.0005;
  options.shard_faults = {core::FaultPlan{}, faulty};  // shard 1 is the bad board
  EngineFarm farm(options);
  alib::SoftwareBackend sw;

  // A small pool of recurring frames keeps residency, affinity and
  // snapshot content live across the run.
  std::vector<img::Image> pool;
  for (u64 i = 0; i < 6; ++i)
    pool.push_back(img::make_test_frame(Size{48, 32}, 100 + i));

  constexpr int kPrograms = 240;
  struct Pending {
    std::future<alib::CallResult> future;
    alib::CallResult ref;
  };
  std::deque<Pending> pending;
  const auto settle = [&](Pending& p) {
    test::expect_results_equal(p.ref, p.future.get());
  };

  i64 snapshots = 0, recovers = 0, restores_applied = 0, corrupt_rejects = 0;
  std::vector<u8> last_blob;
  int last_blob_shard = -1;
  for (int i = 0; i < kPrograms; ++i) {
    bool needs_b = false;
    const Call call = test::random_any_call(rng, Size{48, 32}, needs_b);
    const img::Image& a = pool[rng.bounded(static_cast<u32>(pool.size()))];
    const img::Image* b =
        needs_b ? &pool[rng.bounded(static_cast<u32>(pool.size()))] : nullptr;
    Pending p;
    p.ref = sw.execute(call, a, b);
    p.future = farm.submit(call, a, b);
    pending.push_back(std::move(p));

    if (rng.chance(0.12)) {
      const int shard =
          static_cast<int>(rng.bounded(static_cast<u32>(farm.shard_count())));
      switch (rng.bounded(6)) {
        case 0:
          last_blob = farm.snapshot_shard(shard);
          last_blob_shard = shard;
          ++snapshots;
          break;
        case 1:
          farm.kill_shard(shard);
          break;
        case 2:
          farm.recover_shard(shard);
          ++recovers;
          break;
        case 3:
          if (last_blob_shard >= 0 && last_blob_shard < farm.shard_count()) {
            try {
              farm.restore_shard(last_blob_shard, last_blob);
              ++restores_applied;
            } catch (const serve::SnapshotCorruption&) {
              ++corrupt_rejects;  // rot at rest, detected — expected
            }
          }
          break;
        case 4:
          farm.resize(1 + static_cast<int>(rng.bounded(4)));
          break;
        case 5:
          farm.rebalance();
          break;
      }
    }
    while (pending.size() > 64) {
      settle(pending.front());
      pending.pop_front();
    }
  }
  while (!pending.empty()) {
    settle(pending.front());
    pending.pop_front();
  }
  farm.drain();

  const FarmStats stats = farm.stats();
  EXPECT_EQ(stats.submitted, kPrograms);
  EXPECT_EQ(stats.completed, kPrograms) << "accepted work was dropped";
  EXPECT_EQ(stats.snapshots_taken, snapshots);
  EXPECT_EQ(stats.warm_recoveries + stats.cold_recoveries, recovers);
  EXPECT_EQ(stats.restores, restores_applied + stats.warm_recoveries);
  expect_shard_identity(stats);
  // The chaos schedule must actually have exercised the machinery.
  EXPECT_GT(snapshots, 0);
  EXPECT_GT(recovers, 0);
}

}  // namespace
}  // namespace ae
